#include "workload/cases.h"

#include <utility>

namespace ucad::workload {

namespace {

void Append(sql::RawSession* session, std::string sql, bool injected = false) {
  sql::OperationRecord op;
  op.sql = std::move(sql);
  op.time_offset_s = session->operations.empty()
                         ? 0
                         : session->operations.back().time_offset_s + 3;
  op.injected = injected;
  session->operations.push_back(std::move(op));
}

sql::SessionAttributes LegitimateAttrs(const SessionGenerator& generator,
                                       util::Rng* rng) {
  const auto& spec = generator.spec();
  const size_t i = rng->UniformU64(spec.users.size());
  sql::SessionAttributes attrs;
  attrs.user = spec.users[i];
  attrs.client_address = spec.addresses[i];
  attrs.start_time_s = 1767225600 + 12 * 3600;  // 12:00 noon (the bot's hour)
  return attrs;
}

}  // namespace

CaseStudy MakeDanmuBotCase(const SessionGenerator& generator,
                           util::Rng* rng) {
  CaseStudy cs;
  cs.name = "danmu-bot";
  cs.description =
      "A bot impersonates a legitimate client to post a danmu (bullet-screen "
      "comment) and immediately like it, collecting daily rewards. It never "
      "opens the danmu panel, so the post is not preceded by the danmu reads "
      "every real client performs (Figure 9a).";
  cs.expected_finding =
      "The insert-danmu / insert-like pair without preceding danmu reads "
      "deviates from the contextual intent of a watch session.";

  // Normal client: open video, read danmus (panel open), post, verify, like.
  cs.normal.attrs = LegitimateAttrs(generator, rng);
  Append(&cs.normal, generator.RealizeByName("sel_video", rng));
  Append(&cs.normal, generator.RealizeByName("sel_danmu", rng));
  Append(&cs.normal, generator.RealizeByName("sel_content", rng));
  Append(&cs.normal, generator.RealizeByName("ins_danmu", rng));
  Append(&cs.normal, generator.RealizeByName("upd_content", rng));
  Append(&cs.normal, generator.RealizeByName("sel_danmu", rng));
  Append(&cs.normal, generator.RealizeByName("ins_like", rng));
  Append(&cs.normal, generator.RealizeByName("sel_like", rng));

  // Bot: fetch videos it never commented on, then immediately post + like an
  // *invisible* danmu — no panel reads in between.
  cs.suspicious.attrs = LegitimateAttrs(generator, rng);
  Append(&cs.suspicious, generator.RealizeByName("sel_video", rng));
  Append(&cs.suspicious, generator.RealizeByName("sel_user", rng));
  Append(&cs.suspicious, generator.RealizeByName("ins_danmu", rng),
         /*injected=*/true);
  Append(&cs.suspicious, generator.RealizeByName("ins_like", rng),
         /*injected=*/true);
  Append(&cs.suspicious, generator.RealizeByName("sel_video", rng));
  Append(&cs.suspicious, generator.RealizeByName("ins_danmu", rng),
         /*injected=*/true);
  Append(&cs.suspicious, generator.RealizeByName("ins_like", rng),
         /*injected=*/true);
  cs.suspicious.label = sql::SessionLabel::kCredentialTheft;
  return cs;
}

CaseStudy MakeRepackagedAppCase(const SessionGenerator& generator,
                                util::Rng* rng) {
  CaseStudy cs;
  cs.name = "repackaged-app";
  cs.description =
      "A maliciously repackaged app steals the authentication credential of "
      "a normal app on the same device and reports manipulated location "
      "data: many consecutive loc_rm inserts in a short period (Figure 9b).";
  cs.expected_finding =
      "Consecutive high-frequency inserts into loc_rm deviate from the "
      "report-then-read intent of legitimate location sessions.";

  // Normal app: authenticate (the 61+512 combo), report once, read back,
  // mirror for offline use.
  cs.normal.attrs = LegitimateAttrs(generator, rng);
  Append(&cs.normal, generator.RealizeByName("sel_auth", rng));
  Append(&cs.normal, generator.RealizeByName("upd_auth", rng));
  Append(&cs.normal, generator.RealizeByName("ins_loc_rm", rng));
  Append(&cs.normal, generator.RealizeByName("sel_loc_rm", rng));
  Append(&cs.normal, generator.RealizeByName("ins_loc_rmf", rng));

  // Repackaged app: authenticates with the stolen credential, then floods
  // manipulated positions.
  cs.suspicious.attrs = LegitimateAttrs(generator, rng);
  Append(&cs.suspicious, generator.RealizeByName("sel_auth", rng));
  Append(&cs.suspicious, generator.RealizeByName("upd_auth", rng));
  for (int i = 0; i < 10; ++i) {
    Append(&cs.suspicious, generator.RealizeByName("ins_loc_rm", rng),
           /*injected=*/true);
  }
  cs.suspicious.label = sql::SessionLabel::kCredentialTheft;
  return cs;
}

}  // namespace ucad::workload
