#ifndef UCAD_PREP_DBSCAN_H_
#define UCAD_PREP_DBSCAN_H_

#include <functional>
#include <vector>

namespace ucad::prep {

/// DBSCAN configuration.
struct DbscanOptions {
  /// Neighborhood radius in distance units.
  double eps = 0.4;
  /// Minimum neighborhood size (including the point itself) for a core
  /// point.
  int min_points = 3;
};

/// Result of a DBSCAN run.
struct DbscanResult {
  /// Cluster id per point; kNoise (-1) marks noise points.
  std::vector<int> labels;
  /// Number of clusters found.
  int num_clusters = 0;

  static constexpr int kNoise = -1;
};

/// Density-based clustering over an abstract metric: `distance(i, j)` must
/// be symmetric with distance(i, i) == 0. O(n^2) distance evaluations
/// (pairwise Jaccard over session profiles, paper §5.1). Discovers clusters
/// of arbitrary shape; points reachable from no core point are noise.
DbscanResult Dbscan(size_t n,
                    const std::function<double(size_t, size_t)>& distance,
                    const DbscanOptions& options);

}  // namespace ucad::prep

#endif  // UCAD_PREP_DBSCAN_H_
