#include "prep/session_filter.h"

#include <algorithm>
#include <map>

#include "prep/ngram.h"
#include "util/logging.h"

namespace ucad::prep {

namespace {

/// Median of a non-empty vector (copies; inputs are small).
template <typename T>
T Median(std::vector<T> values) {
  UCAD_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

std::vector<sql::KeySession> FilterSessions(
    const std::vector<sql::KeySession>& sessions,
    const SessionFilterOptions& options, util::Rng* rng,
    SessionFilterStats* stats) {
  SessionFilterStats local_stats;
  SessionFilterStats& s = stats != nullptr ? *stats : local_stats;
  s = SessionFilterStats();
  s.input_sessions = static_cast<int>(sessions.size());
  if (sessions.empty()) return {};

  // (1) Cluster by Jaccard distance over n-gram profiles.
  std::vector<NgramProfile> profiles;
  profiles.reserve(sessions.size());
  for (const auto& session : sessions) {
    if (options.profile_key_map) {
      std::vector<int> coarse;
      coarse.reserve(session.keys.size());
      for (int key : session.keys) {
        coarse.push_back(options.profile_key_map(key));
      }
      profiles.emplace_back(coarse, options.ngram_order);
    } else {
      profiles.emplace_back(session.keys, options.ngram_order);
    }
  }
  const DbscanResult clustering = Dbscan(
      sessions.size(),
      [&profiles](size_t i, size_t j) {
        return profiles[i].Distance(profiles[j]);
      },
      options.dbscan);
  s.clusters = clustering.num_clusters;

  std::map<int, std::vector<size_t>> members;
  for (size_t i = 0; i < sessions.size(); ++i) {
    const int label = clustering.labels[i];
    if (label == DbscanResult::kNoise) {
      ++s.removed_noise_points;
      continue;
    }
    members[label].push_back(i);
  }
  if (members.empty()) {
    s.output_sessions = 0;
    return {};
  }

  std::vector<int> cluster_sizes;
  cluster_sizes.reserve(members.size());
  for (const auto& [label, idx] : members) {
    cluster_sizes.push_back(static_cast<int>(idx.size()));
  }
  const int median_size = Median(cluster_sizes);

  std::vector<size_t> kept;
  for (auto& [label, idx] : members) {
    // (2) Balance: under-sample clusters far above the median size.
    const int cap = std::max(
        1, static_cast<int>(median_size * options.oversample_factor));
    std::vector<size_t> cluster_kept = idx;
    if (static_cast<int>(cluster_kept.size()) > cap) {
      const std::vector<size_t> sample =
          rng->SampleWithoutReplacement(cluster_kept.size(), cap);
      std::vector<size_t> sampled;
      sampled.reserve(sample.size());
      for (size_t pos : sample) sampled.push_back(cluster_kept[pos]);
      s.removed_by_undersampling +=
          static_cast<int>(cluster_kept.size() - sampled.size());
      cluster_kept = std::move(sampled);
    }
    // (3) Drop clusters whose (post-balancing) size is far below median.
    if (static_cast<double>(idx.size()) <
        options.small_cluster_ratio * median_size) {
      s.removed_small_clusters += static_cast<int>(cluster_kept.size());
      continue;
    }
    // (4) Drop sessions much shorter than the cluster's median length.
    std::vector<int> lengths;
    lengths.reserve(cluster_kept.size());
    for (size_t i : cluster_kept) {
      lengths.push_back(static_cast<int>(sessions[i].keys.size()));
    }
    const int median_len = Median(lengths);
    for (size_t i : cluster_kept) {
      if (static_cast<double>(sessions[i].keys.size()) <
          options.short_session_ratio * median_len) {
        ++s.removed_short_sessions;
        continue;
      }
      kept.push_back(i);
    }
  }
  std::sort(kept.begin(), kept.end());

  std::vector<sql::KeySession> out;
  out.reserve(kept.size());
  for (size_t i : kept) out.push_back(sessions[i]);
  s.output_sessions = static_cast<int>(out.size());
  return out;
}

}  // namespace ucad::prep
