#ifndef UCAD_PREP_PREPROCESSOR_H_
#define UCAD_PREP_PREPROCESSOR_H_

#include <utility>
#include <vector>

#include "prep/access_control.h"
#include "prep/session_filter.h"
#include "sql/session.h"
#include "sql/vocabulary.h"
#include "util/rng.h"

namespace ucad::prep {

/// The UCAD preprocessing module (§5.1). Offline it builds the statement
/// vocabulary, filters known attack patterns with access-control policies,
/// and removes noisy sessions by clustering; online it tokenizes active
/// sessions against the frozen vocabulary and screens them against the same
/// policies.
class Preprocessor {
 public:
  /// `engine` is moved in; filter options select the clustering knobs.
  Preprocessor(PolicyEngine engine, SessionFilterOptions filter_options);

  /// Offline stage: raw audit log -> purified tokenized training sessions.
  /// Builds (grows) the vocabulary, then freezes it for detection.
  std::vector<sql::KeySession> PrepareTrainingData(
      const std::vector<sql::RawSession>& log, util::Rng* rng);

  /// Online stage: tokenizes one active session with the frozen
  /// vocabulary. Sets `*known_attack` when an access policy rejects it
  /// (filtered before the model runs).
  sql::KeySession PrepareActiveSession(const sql::RawSession& session,
                                       bool* known_attack) const;

  const sql::Vocabulary& vocabulary() const { return vocab_; }
  sql::Vocabulary* mutable_vocabulary() { return &vocab_; }
  const SessionFilterStats& last_filter_stats() const {
    return filter_stats_;
  }
  int rejected_by_policy() const { return rejected_by_policy_; }
  const PolicyEngine& policy_engine() const { return engine_; }

 private:
  PolicyEngine engine_;
  SessionFilterOptions filter_options_;
  sql::Vocabulary vocab_;
  SessionFilterStats filter_stats_;
  int rejected_by_policy_ = 0;
};

}  // namespace ucad::prep

#endif  // UCAD_PREP_PREPROCESSOR_H_
