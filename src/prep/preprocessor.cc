#include "prep/preprocessor.h"

#include <map>
#include <memory>
#include <string>
#include <utility>

namespace ucad::prep {

namespace {

/// Key -> (table, command)-group mapping derived from a frozen vocabulary.
std::function<int(int)> MakeTableCommandMap(const sql::Vocabulary& vocab) {
  auto groups = std::make_shared<std::vector<int>>(vocab.size(), 0);
  std::map<std::pair<std::string, int>, int> index;
  for (int key = 1; key < vocab.size(); ++key) {
    const auto group_key = std::make_pair(
        vocab.TableOf(key), static_cast<int>(vocab.CommandOf(key)));
    auto it = index.find(group_key);
    if (it == index.end()) {
      it = index.emplace(group_key, static_cast<int>(index.size()) + 1).first;
    }
    (*groups)[key] = it->second;
  }
  return [groups](int key) {
    return key >= 0 && key < static_cast<int>(groups->size()) ? (*groups)[key]
                                                              : 0;
  };
}

}  // namespace

Preprocessor::Preprocessor(PolicyEngine engine,
                           SessionFilterOptions filter_options)
    : engine_(std::move(engine)), filter_options_(filter_options) {}

std::vector<sql::KeySession> Preprocessor::PrepareTrainingData(
    const std::vector<sql::RawSession>& log, util::Rng* rng) {
  // (1) Enforce access-control policies: drop known attack patterns.
  std::vector<sql::RawSession> admitted;
  std::vector<sql::RawSession> rejected;
  engine_.Filter(log, &admitted, &rejected);
  rejected_by_policy_ = static_cast<int>(rejected.size());

  // (2) Tokenize, growing the vocabulary.
  std::vector<sql::KeySession> tokenized =
      sql::TokenizeSessions(admitted, &vocab_, /*assign_new=*/true);
  vocab_.Freeze();

  // (3) Clustering-based noise removal and balancing.
  SessionFilterOptions filter = filter_options_;
  if (filter.coarsen_by_table_command && !filter.profile_key_map) {
    filter.profile_key_map = MakeTableCommandMap(vocab_);
  }
  return FilterSessions(tokenized, filter, rng, &filter_stats_);
}

sql::KeySession Preprocessor::PrepareActiveSession(
    const sql::RawSession& session, bool* known_attack) const {
  if (known_attack != nullptr) {
    *known_attack = !engine_.Admits(session);
  }
  return sql::TokenizeSessionFrozen(session, vocab_);
}

}  // namespace ucad::prep
