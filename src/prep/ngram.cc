#include "prep/ngram.h"

#include <algorithm>

#include "util/logging.h"

namespace ucad::prep {

namespace {

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // splitmix64-style mixing.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL + value;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

NgramProfile::NgramProfile(const std::vector<int>& keys, int max_n) {
  UCAD_CHECK_GE(max_n, 1);
  grams_.reserve(keys.size() * max_n);
  for (int n = 1; n <= max_n; ++n) {
    if (static_cast<int>(keys.size()) < n) break;
    for (size_t i = 0; i + n <= keys.size(); ++i) {
      uint64_t h = static_cast<uint64_t>(n) * 0x100000001B3ULL;
      for (int j = 0; j < n; ++j) {
        h = HashCombine(h, static_cast<uint64_t>(keys[i + j]));
      }
      grams_.push_back(h);
    }
  }
  std::sort(grams_.begin(), grams_.end());
  grams_.erase(std::unique(grams_.begin(), grams_.end()), grams_.end());
}

double NgramProfile::Jaccard(const NgramProfile& other) const {
  if (grams_.empty() && other.grams_.empty()) return 1.0;
  size_t i = 0, j = 0, intersection = 0;
  while (i < grams_.size() && j < other.grams_.size()) {
    if (grams_[i] == other.grams_[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (grams_[i] < other.grams_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = grams_.size() + other.grams_.size() - intersection;
  return uni == 0 ? 1.0 : static_cast<double>(intersection) / uni;
}

}  // namespace ucad::prep
