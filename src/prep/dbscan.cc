#include "prep/dbscan.h"

#include <deque>

#include "util/logging.h"

namespace ucad::prep {

DbscanResult Dbscan(size_t n,
                    const std::function<double(size_t, size_t)>& distance,
                    const DbscanOptions& options) {
  UCAD_CHECK_GE(options.min_points, 1);
  DbscanResult result;
  result.labels.assign(n, DbscanResult::kNoise);
  if (n == 0) return result;

  // Precompute neighbor lists (O(n^2) metric evaluations).
  std::vector<std::vector<size_t>> neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    neighbors[i].push_back(i);
    for (size_t j = i + 1; j < n; ++j) {
      if (distance(i, j) <= options.eps) {
        neighbors[i].push_back(j);
        neighbors[j].push_back(i);
      }
    }
  }

  std::vector<bool> visited(n, false);
  int next_cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    if (static_cast<int>(neighbors[i].size()) < options.min_points) {
      continue;  // noise unless later absorbed as a border point
    }
    const int cluster = next_cluster++;
    result.labels[i] = cluster;
    std::deque<size_t> frontier(neighbors[i].begin(), neighbors[i].end());
    while (!frontier.empty()) {
      const size_t p = frontier.front();
      frontier.pop_front();
      if (result.labels[p] == DbscanResult::kNoise) {
        result.labels[p] = cluster;  // border point
      }
      if (visited[p]) continue;
      visited[p] = true;
      result.labels[p] = cluster;
      if (static_cast<int>(neighbors[p].size()) >= options.min_points) {
        for (size_t q : neighbors[p]) {
          if (!visited[q] || result.labels[q] == DbscanResult::kNoise) {
            frontier.push_back(q);
          }
        }
      }
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace ucad::prep
