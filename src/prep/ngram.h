#ifndef UCAD_PREP_NGRAM_H_
#define UCAD_PREP_NGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ucad::prep {

/// A session profile: the sorted, deduplicated set of hashed n-grams of its
/// key sequence (paper §5.1 profiles sessions by n-gram features and
/// compares them with the Jaccard index).
class NgramProfile {
 public:
  /// Builds the profile from a key sequence using all n-gram orders in
  /// [1, max_n]. max_n >= 1.
  NgramProfile(const std::vector<int>& keys, int max_n);

  /// Number of distinct n-grams.
  size_t size() const { return grams_.size(); }

  /// Jaccard similarity |A ∩ B| / |A ∪ B| in [0, 1]; two empty profiles
  /// have similarity 1.
  double Jaccard(const NgramProfile& other) const;

  /// Jaccard distance = 1 - similarity.
  double Distance(const NgramProfile& other) const {
    return 1.0 - Jaccard(other);
  }

 private:
  std::vector<uint64_t> grams_;  // sorted unique
};

}  // namespace ucad::prep

#endif  // UCAD_PREP_NGRAM_H_
