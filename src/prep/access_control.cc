#include "prep/access_control.h"

#include <utility>

#include "sql/statement.h"
#include "util/logging.h"

namespace ucad::prep {

void KnownUserAddressPolicy::Allow(const std::string& user,
                                   const std::string& address) {
  allowed_[user].insert(address);
}

bool KnownUserAddressPolicy::Violates(const sql::RawSession& session) const {
  auto it = allowed_.find(session.attrs.user);
  if (it == allowed_.end()) return true;
  return it->second.find(session.attrs.client_address) == it->second.end();
}

std::string KnownUserAddressPolicy::Describe() const {
  return "known-user-address";
}

AccessHoursPolicy::AccessHoursPolicy(int start_hour, int end_hour)
    : start_hour_(start_hour), end_hour_(end_hour) {
  UCAD_CHECK(start_hour >= 0 && start_hour < 24);
  UCAD_CHECK(end_hour > start_hour && end_hour <= 24);
}

bool AccessHoursPolicy::Violates(const sql::RawSession& session) const {
  const int hour =
      static_cast<int>((session.attrs.start_time_s % 86400) / 3600);
  return hour < start_hour_ || hour >= end_hour_;
}

std::string AccessHoursPolicy::Describe() const { return "access-hours"; }

ForbiddenTablePolicy::ForbiddenTablePolicy(std::vector<std::string> tables) {
  for (auto& t : tables) tables_.insert(std::move(t));
}

bool ForbiddenTablePolicy::Violates(const sql::RawSession& session) const {
  for (const auto& op : session.operations) {
    if (tables_.count(sql::ExtractTable(op.sql)) > 0) return true;
  }
  return false;
}

std::string ForbiddenTablePolicy::Describe() const {
  return "forbidden-table";
}

MaxOpIntervalPolicy::MaxOpIntervalPolicy(int64_t max_gap_s)
    : max_gap_s_(max_gap_s) {
  UCAD_CHECK_GT(max_gap_s, 0);
}

bool MaxOpIntervalPolicy::Violates(const sql::RawSession& session) const {
  for (size_t i = 1; i < session.operations.size(); ++i) {
    const int64_t gap = session.operations[i].time_offset_s -
                        session.operations[i - 1].time_offset_s;
    if (gap > max_gap_s_) return true;
  }
  return false;
}

std::string MaxOpIntervalPolicy::Describe() const {
  return "max-op-interval";
}

void PolicyEngine::AddPolicy(std::unique_ptr<AccessPolicy> policy) {
  policies_.push_back(std::move(policy));
}

bool PolicyEngine::Admits(const sql::RawSession& session) const {
  for (const auto& policy : policies_) {
    if (policy->Violates(session)) return false;
  }
  return true;
}

std::string PolicyEngine::FirstViolation(
    const sql::RawSession& session) const {
  for (const auto& policy : policies_) {
    if (policy->Violates(session)) return policy->Describe();
  }
  return "";
}

void PolicyEngine::Filter(const std::vector<sql::RawSession>& log,
                          std::vector<sql::RawSession>* admitted,
                          std::vector<sql::RawSession>* rejected) const {
  for (const sql::RawSession& session : log) {
    if (Admits(session)) {
      admitted->push_back(session);
    } else {
      rejected->push_back(session);
    }
  }
}

PolicyEngine MakeDefaultPolicyEngine(
    const std::vector<std::string>& users,
    const std::vector<std::string>& addresses, int start_hour, int end_hour) {
  UCAD_CHECK_EQ(users.size(), addresses.size());
  PolicyEngine engine;
  auto bindings = std::make_unique<KnownUserAddressPolicy>();
  for (size_t i = 0; i < users.size(); ++i) {
    bindings->Allow(users[i], addresses[i]);
  }
  engine.AddPolicy(std::move(bindings));
  engine.AddPolicy(std::make_unique<AccessHoursPolicy>(start_hour, end_hour));
  engine.AddPolicy(std::make_unique<ForbiddenTablePolicy>(
      std::vector<std::string>{"t_credentials", "t_secrets"}));
  engine.AddPolicy(std::make_unique<MaxOpIntervalPolicy>(1800));
  return engine;
}

}  // namespace ucad::prep
