#ifndef UCAD_PREP_SESSION_FILTER_H_
#define UCAD_PREP_SESSION_FILTER_H_

#include <functional>
#include <vector>

#include "prep/dbscan.h"
#include "sql/session.h"
#include "util/rng.h"

namespace ucad::prep {

/// Knobs for the clustering-based noise removal of §5.1.
struct SessionFilterOptions {
  /// n-gram order used for session profiles.
  int ngram_order = 2;
  /// Optional coarsening applied to keys before profiling (e.g. mapping a
  /// statement key to its (table, command) group). High-cardinality
  /// vocabularies make raw-key Jaccard similarities vanish — two sessions
  /// doing the same work rarely reuse the exact same templates — so
  /// clustering of *behavior* should compare coarser tokens. Identity when
  /// unset.
  std::function<int(int)> profile_key_map;
  /// When true (and profile_key_map is unset), the Preprocessor derives a
  /// (table, command)-group coarsening from its vocabulary before
  /// filtering.
  bool coarsen_by_table_command = false;
  /// DBSCAN parameters over Jaccard distance.
  DbscanOptions dbscan;
  /// Clusters smaller than `small_cluster_ratio * median cluster size` are
  /// removed (their access patterns are rare).
  double small_cluster_ratio = 0.25;
  /// Sessions shorter than `short_session_ratio * median session length of
  /// their cluster` are removed (too short to reveal intent).
  double short_session_ratio = 0.5;
  /// Clusters larger than `oversample_factor * median` are randomly
  /// under-sampled down to that bound (pattern balancing).
  double oversample_factor = 2.0;
};

/// Per-stage accounting of the filter.
struct SessionFilterStats {
  int input_sessions = 0;
  int clusters = 0;
  int removed_noise_points = 0;       // DBSCAN noise
  int removed_small_clusters = 0;     // rare patterns
  int removed_by_undersampling = 0;   // balancing
  int removed_short_sessions = 0;     // ambiguous semantics
  int output_sessions = 0;
};

/// Applies the paper's clustering pipeline to tokenized sessions:
/// (1) profile sessions with n-grams and cluster by Jaccard distance with
/// DBSCAN; (2) under-sample clusters far above the median size; (3) drop
/// clusters far below the median size; (4) drop sessions much shorter than
/// their cluster's median length. Returns the purified training sessions.
std::vector<sql::KeySession> FilterSessions(
    const std::vector<sql::KeySession>& sessions,
    const SessionFilterOptions& options, util::Rng* rng,
    SessionFilterStats* stats = nullptr);

}  // namespace ucad::prep

#endif  // UCAD_PREP_SESSION_FILTER_H_
