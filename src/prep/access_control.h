#ifndef UCAD_PREP_ACCESS_CONTROL_H_
#define UCAD_PREP_ACCESS_CONTROL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sql/session.h"

namespace ucad::prep {

/// One attribute-based access-control rule (paper §5.1: identity, address,
/// time, target table, and inter-operation interval attributes). A session
/// violating any rule is filtered as a known attack pattern.
class AccessPolicy {
 public:
  virtual ~AccessPolicy() = default;

  /// True iff the session violates this policy.
  virtual bool Violates(const sql::RawSession& session) const = 0;

  /// Human-readable rule description.
  virtual std::string Describe() const = 0;
};

/// Grants access only to known (user, client address) pairs — an unknown
/// address is a typical anomaly characteristic [6].
class KnownUserAddressPolicy : public AccessPolicy {
 public:
  /// Registers a legitimate binding.
  void Allow(const std::string& user, const std::string& address);

  bool Violates(const sql::RawSession& session) const override;
  std::string Describe() const override;

 private:
  std::unordered_map<std::string, std::unordered_set<std::string>> allowed_;
};

/// Grants access only inside the [start_hour, end_hour) local-time window.
class AccessHoursPolicy : public AccessPolicy {
 public:
  AccessHoursPolicy(int start_hour, int end_hour);

  bool Violates(const sql::RawSession& session) const override;
  std::string Describe() const override;

 private:
  int start_hour_;
  int end_hour_;
};

/// Denies any session touching one of the listed tables.
class ForbiddenTablePolicy : public AccessPolicy {
 public:
  explicit ForbiddenTablePolicy(std::vector<std::string> tables);

  bool Violates(const sql::RawSession& session) const override;
  std::string Describe() const override;

 private:
  std::unordered_set<std::string> tables_;
};

/// Denies sessions whose consecutive operations are separated by more than
/// `max_gap_s` seconds (interactive sessions have bounded think time).
class MaxOpIntervalPolicy : public AccessPolicy {
 public:
  explicit MaxOpIntervalPolicy(int64_t max_gap_s);

  bool Violates(const sql::RawSession& session) const override;
  std::string Describe() const override;

 private:
  int64_t max_gap_s_;
};

/// An extensible set of policies (new rules can be added to filter more
/// known attack patterns, per the paper).
class PolicyEngine {
 public:
  /// Adds a rule; the engine owns it.
  void AddPolicy(std::unique_ptr<AccessPolicy> policy);

  /// True iff the session violates no policy.
  bool Admits(const sql::RawSession& session) const;

  /// Name of the first violated policy, or "" when admitted.
  std::string FirstViolation(const sql::RawSession& session) const;

  /// Splits a raw log into admitted and rejected sessions.
  void Filter(const std::vector<sql::RawSession>& log,
              std::vector<sql::RawSession>* admitted,
              std::vector<sql::RawSession>* rejected) const;

  size_t size() const { return policies_.size(); }

 private:
  std::vector<std::unique_ptr<AccessPolicy>> policies_;
};

/// Builds the default engine for a generated scenario: known user/address
/// bindings from the spec's population, business-hours window, a forbidden
/// credential table, and a 30-minute inter-op cap.
PolicyEngine MakeDefaultPolicyEngine(
    const std::vector<std::string>& users,
    const std::vector<std::string>& addresses, int start_hour, int end_hour);

}  // namespace ucad::prep

#endif  // UCAD_PREP_ACCESS_CONTROL_H_
