#include "transdas/detector.h"

#include <algorithm>
#include <utility>

#include "nn/infer.h"
#include "nn/tape.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ucad::transdas {

std::vector<int> SessionVerdict::AbnormalPositions() const {
  std::vector<int> out;
  for (const OperationVerdict& op : operations) {
    if (op.abnormal) out.push_back(op.position);
  }
  return out;
}

TransDasDetector::TransDasDetector(TransDasModel* model,
                                   const DetectorOptions& options)
    : model_(model), options_(options) {
  UCAD_CHECK(model_ != nullptr);
  UCAD_CHECK_GE(options_.top_p, 1);
}

void TransDasDetector::ScoreKey(const nn::Tensor& logits, int row, int key,
                                OperationVerdict* op) const {
  const nn::RowScore rs =
      nn::ScoreLogitsRow(logits.row(row), logits.cols(), key, options_.top_p);
  op->rank = rs.rank;
  op->score = rs.score;
  op->margin = rs.margin;
  op->abnormal = rs.abnormal;
}

namespace {

/// Maps keys outside [0, vocab) to k0 so a corrupted or newer-vocabulary
/// session cannot crash the embedding gather; such keys still rank worst.
int Sanitize(int key, int vocab) { return key >= 0 && key < vocab ? key : 0; }

}  // namespace

std::vector<int> TransDasDetector::BuildWindow(const std::vector<int>& keys,
                                               int count) const {
  const int L = model_->config().window;
  const int vocab = model_->config().vocab_size;
  std::vector<int> window(L, 0);
  const int take = std::min(L, count);
  for (int i = 0; i < take; ++i) {
    window[L - take + i] = Sanitize(keys[count - take + i], vocab);
  }
  return window;
}

std::unique_ptr<nn::InferenceContext> TransDasDetector::AcquireContext() const {
  {
    std::lock_guard<std::mutex> lock(ctx_mutex_);
    if (!ctx_pool_.empty()) {
      std::unique_ptr<nn::InferenceContext> ctx = std::move(ctx_pool_.back());
      ctx_pool_.pop_back();
      return ctx;
    }
  }
  return std::make_unique<nn::InferenceContext>();
}

void TransDasDetector::ReleaseContext(
    std::unique_ptr<nn::InferenceContext> ctx) const {
  std::lock_guard<std::mutex> lock(ctx_mutex_);
  ctx_pool_.push_back(std::move(ctx));
}

void TransDasDetector::WithWindowLogits(
    const std::vector<int>& input, int rows_from,
    const std::function<void(const nn::Tensor&)>& fn, bool slide) const {
  if (options_.use_tape_engine) {
    nn::Tape tape;
    obs::FlightStageBoundary(obs::FlightStage::kContextAcquire);
    nn::VarId outputs =
        model_->Forward(&tape, input, /*training=*/false, nullptr);
    nn::VarId logits = model_->AllKeyLogits(&tape, outputs);
    // The tape engine has no per-stage hooks: the whole graph build +
    // forward lands in the logits stage of the flight trace.
    obs::FlightStageBoundary(obs::FlightStage::kLogits);
    fn(tape.value(logits));
    return;
  }
  // The tier scope lives here — the per-thread forward site — rather than
  // at DetectSession entry: session-level fan-out runs on pool threads
  // whose ambient tier would otherwise stay kReference.
  nn::ScopedKernelTier tier_scope(options_.kernel_tier);
  std::unique_ptr<nn::InferenceContext> ctx = AcquireContext();
  obs::FlightStageBoundary(obs::FlightStage::kContextAcquire);
  const nn::Tensor& outputs =
      model_->ForwardInference(ctx.get(), input, rows_from, slide);
  fn(model_->AllKeyLogitsInference(ctx.get(), outputs, rows_from));
  ReleaseContext(std::move(ctx));
}

int TransDasDetector::RankNextOperation(const std::vector<int>& preceding,
                                        int next_key) const {
  return ScoreNextOperation(preceding, next_key).rank;
}

OperationVerdict TransDasDetector::ScoreNextOperation(
    const std::vector<int>& preceding, int next_key) const {
  obs::FlightBegin(static_cast<int>(preceding.size()));
  const int L = model_->config().window;
  const std::vector<int> window =
      BuildWindow(preceding, static_cast<int>(preceding.size()));
  // The last output position carries the contextual intent of the next
  // operation (§5.3); the inference engine only computes that row's tail.
  OperationVerdict op;
  // Incremental streaming: consecutive calls for the same session slide the
  // window by one, so the context's slide cache reuses L-1 of the embedding
  // and block-0 projection rows (keyed by the sanitized window itself —
  // interleaved sessions through the pool can only miss, never corrupt).
  const bool slide = options_.incremental && !options_.use_tape_engine;
  this->WithWindowLogits(
      window, /*rows_from=*/L - 1,
      [&](const nn::Tensor& logits) { ScoreKey(logits, L - 1, next_key, &op); },
      slide);
  obs::FlightEnd(op.rank, op.score, op.margin, op.abnormal);
  return op;
}

std::vector<TransDasDetector::Candidate> TransDasDetector::ExplainOperation(
    const std::vector<int>& keys, int position, int top_k) const {
  UCAD_CHECK(position >= 1 && position < static_cast<int>(keys.size()));
  const int L = model_->config().window;
  const int vocab = model_->config().vocab_size;
  // Same window placement as the streaming scorer: the preceding sequence
  // ends at `position`-1 and fills the window from the right.
  const std::vector<int> window = BuildWindow(keys, position);
  std::vector<Candidate> candidates;
  candidates.reserve(vocab - 1);
  WithWindowLogits(window, /*rows_from=*/L - 1, [&](const nn::Tensor& logits) {
    for (int k = 1; k < vocab; ++k) {
      candidates.push_back(Candidate{k, logits.at(L - 1, k)});
    }
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  if (static_cast<int>(candidates.size()) > top_k) {
    candidates.resize(top_k);
  }
  return candidates;
}

TransDasDetector::VerdictAttribution TransDasDetector::AttributeOperation(
    const std::vector<int>& keys, int position, int top_k) const {
  UCAD_CHECK(position >= 1 && position < static_cast<int>(keys.size()));
  UCAD_CHECK_GE(top_k, 1);
  const int L = model_->config().window;
  const int vocab = model_->config().vocab_size;
  std::vector<int> window = BuildWindow(keys, position);
  const int take = std::min(L, position);

  VerdictAttribution out;
  out.verdict.position = position;

  nn::ScopedKernelTier tier_scope(options_.kernel_tier);
  std::unique_ptr<nn::InferenceContext> ctx = AcquireContext();
  // One forward re-derives the verdict and, via the armed capture, the
  // final block's attention over the window — same tail-restricted row
  // the streaming scorer computes, so the verdict matches DetectSession
  // on the detector's own tier (bitwise under kReference).
  ctx->SetAttentionCaptureRow(L - 1);
  const nn::Tensor& outputs =
      model_->ForwardInference(ctx.get(), window, /*rows_from=*/L - 1);
  const nn::Tensor& logits =
      model_->AllKeyLogitsInference(ctx.get(), outputs, L - 1);
  ScoreKey(logits, L - 1, keys[position], &out.verdict);
  const std::vector<std::vector<float>> attention = ctx->captured_attention();
  ctx->SetAttentionCaptureRow(-1);

  // Per-position attention mass, averaged over heads; padding slots (left
  // of the right-aligned context) carry mass but name no operation, so
  // they are never candidates — their share is simply not attributed.
  const float inv_heads =
      attention.empty() ? 0.0f : 1.0f / static_cast<float>(attention.size());
  std::vector<AttributionEntry> candidates;
  candidates.reserve(static_cast<size_t>(take));
  for (int j = L - take; j < L; ++j) {
    AttributionEntry entry;
    entry.session_position = position - take + (j - (L - take));
    entry.key = window[j];
    float mass = 0.0f;
    for (const std::vector<float>& head : attention) mass += head[j];
    entry.attention = mass * inv_heads;
    candidates.push_back(entry);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const AttributionEntry& a, const AttributionEntry& b) {
                     return a.attention > b.attention;
                   });
  if (static_cast<int>(candidates.size()) > top_k) {
    candidates.resize(static_cast<size_t>(top_k));
  }

  // Exact leave-one-out counterfactuals: mask one context position to k0
  // and re-score through the same pooled workspace and row-tail path, so
  // each counterfactual is one cheap row forward and every stored float
  // matches a from-scratch DetectSession of the edited session.
  for (AttributionEntry& entry : candidates) {
    const int j = L - take + (entry.session_position - (position - take));
    const int saved = window[j];
    window[j] = 0;
    const nn::Tensor& cf_outputs =
        model_->ForwardInference(ctx.get(), window, /*rows_from=*/L - 1);
    const nn::Tensor& cf_logits =
        model_->AllKeyLogitsInference(ctx.get(), cf_outputs, L - 1);
    entry.counterfactual = nn::ScoreLogitsRow(cf_logits.row(L - 1), vocab,
                                              keys[position], options_.top_p);
    window[j] = saved;
  }
  ReleaseContext(std::move(ctx));
  out.contributions = std::move(candidates);
  return out;
}

namespace {

/// Flushes per-session scoring observations into the default registry.
/// Latency is split at the forward-pass boundary: setup_latency_ms covers
/// window construction (padding, sanitization, span planning, verdict
/// allocation), score_latency_ms covers the model forwards + Eq. 10 scoring
/// that the nn/infer engine accelerates. The drift monitor sees the sum
/// (the end-to-end figure it always saw).
void RecordDetectMetrics(const SessionVerdict& verdict, double setup_ms,
                         double score_ms) {
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  // Fine buckets: the flight recorder's stage p50s are reconciled against
  // score_latency_ms p50, so both sides need low interpolation error.
  reg.GetHistogram("detector/setup_latency_ms", {},
                   obs::Histogram::FineLatencyBounds())
      ->Observe(setup_ms);
  reg.GetHistogram("detector/score_latency_ms", {},
                   obs::Histogram::FineLatencyBounds())
      ->Observe(score_ms);
  obs::Counter* sessions = reg.GetCounter("detector/sessions_total");
  obs::Counter* abnormal = reg.GetCounter("detector/abnormal_sessions_total");
  sessions->Increment();
  if (verdict.abnormal) abnormal->Increment();
  reg.GetCounter("detector/operations_total")
      ->Increment(verdict.operations.size());
  reg.GetGauge("detector/anomaly_rate")
      ->Set(static_cast<double>(abnormal->Value()) /
            static_cast<double>(sessions->Value()));
  // Streaming forensics (opt-in): per-op rank/score quantile sketches and
  // the windowed rank-distribution drift detector.
  if (obs::DetectionMonitorEnabled()) {
    obs::DetectionMonitor& monitor = obs::DefaultDetectionMonitor();
    for (const OperationVerdict& op : verdict.operations) {
      monitor.ObserveOperation(op.rank, op.score);
    }
    monitor.ObserveLatency(setup_ms + score_ms);
  }
}

}  // namespace

SessionVerdict TransDasDetector::DetectSession(
    const std::vector<int>& keys) const {
  return DetectSessionImpl(keys, /*shadow=*/false);
}

SessionVerdict TransDasDetector::ShadowDetectSession(
    const std::vector<int>& keys) const {
  return DetectSessionImpl(keys, /*shadow=*/true);
}

SessionVerdict TransDasDetector::DetectSessionImpl(
    const std::vector<int>& keys, bool shadow) const {
  UCAD_TRACE_SPAN("detector/session");
  // Shadow runs score identically but never flush RecordDetectMetrics:
  // canary probes must not move the cumulative counters, the anomaly rate,
  // or the PSI drift reference that real traffic is judged against.
  const bool metrics = obs::MetricsEnabled() && !shadow;
  util::Timer timer;
  SessionVerdict verdict;
  if (keys.size() < 2) return verdict;
  const int L = model_->config().window;
  const int n = static_cast<int>(keys.size());

  if (!options_.batched) {
    // Each position's score depends only on the (read-only) model and the
    // session prefix, so positions fan out across the pool; every lane
    // writes its own preallocated verdict slot.
    verdict.operations.resize(n - 1);
    const double setup_ms = timer.ElapsedMillis();
    util::ParallelFor(1, n, /*grain=*/1, [this, &keys, &verdict](
                                             int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        std::vector<int> preceding(keys.begin(), keys.begin() + t);
        OperationVerdict op =
            ScoreNextOperation(preceding, keys[static_cast<size_t>(t)]);
        op.position = static_cast<int>(t);
        verdict.operations[t - 1] = op;
      }
    });
    for (const OperationVerdict& op : verdict.operations) {
      if (op.abnormal) {
        verdict.abnormal = true;
        break;
      }
    }
    if (metrics) {
      RecordDetectMetrics(verdict, setup_ms,
                          timer.ElapsedMillis() - setup_ms);
    }
    return verdict;
  }

  // Batched mode: one forward pass scores a window of L consecutive
  // operations (output position i carries the intent of input position
  // i+1, exactly the training alignment). Windows advance by L.
  const int vocab = model_->config().vocab_size;
  std::vector<int> padded(L, 0);  // L leading pads so op 1..L-1 get context
  padded.reserve(L + keys.size());
  for (int key : keys) padded.push_back(Sanitize(key, vocab));
  verdict.operations.resize(n - 1);
  std::vector<BatchSpan> spans;
  AppendSpans(&padded, &keys, &verdict.operations, n, L, &spans);
  const double setup_ms = timer.ElapsedMillis();
  const int bw = options_.batch_windows;
  if (bw > 1 && !options_.use_tape_engine) {
    // Multi-window tier: pack up to batch_windows spans per forward. Chunk
    // boundaries are a pure function of the span list, and batching never
    // changes a computed logits row, so verdicts match the per-window walk
    // at any thread count.
    const int64_t chunks = (static_cast<int64_t>(spans.size()) + bw - 1) / bw;
    util::ParallelFor(0, chunks, /*grain=*/1,
                      [this, &spans, bw](int64_t c0, int64_t c1) {
                        for (int64_t c = c0; c < c1; ++c) {
                          const int start = static_cast<int>(c) * bw;
                          const int count = std::min(
                              bw, static_cast<int>(spans.size()) - start);
                          std::unique_ptr<nn::InferenceContext> ctx =
                              AcquireContext();
                          ScoreSpanBatch(ctx.get(), spans.data() + start, count,
                                         bw);
                          ReleaseContext(std::move(ctx));
                        }
                      });
  } else {
    // The spans own disjoint position ranges, so the forward passes fan out
    // across the pool with each lane writing disjoint verdict slots. The
    // window placement is fixed by (n, L) alone — thread count never changes
    // which window scores a position, so verdicts match the serial walk.
    util::ParallelFor(
        0, static_cast<int64_t>(spans.size()), /*grain=*/1,
        [this, &spans, &padded, &keys, L, n](int64_t b0, int64_t b1) {
          for (int64_t b = b0; b < b1; ++b) {
            const BatchSpan& span = spans[b];
            obs::FlightBegin(span.lo);
            std::vector<int> input(padded.begin() + span.w,
                                   padded.begin() + span.w + L);
            // Output row i scores session position w + i + 1 - L, so the
            // rows this span owns are the contiguous tail starting at lo's
            // row; clamped tail windows (and short sessions) skip the
            // re-derived prefix entirely in the inference engine.
            const int rows_from = span.lo + L - 1 - span.w;
            // The flight trace summarizes the window by its worst-ranked
            // operation (the one an investigator drills into first).
            OperationVerdict worst;
            worst.rank = -1;
            bool any_abnormal = false;
            WithWindowLogits(input, rows_from, [&](const nn::Tensor& scores) {
              for (int i = 0; i < L; ++i) {
                const int session_pos = span.w + i + 1 - L;
                if (session_pos < span.lo || session_pos >= n) continue;
                OperationVerdict op;
                op.position = session_pos;
                ScoreKey(scores, i, keys[session_pos], &op);
                if (op.abnormal) any_abnormal = true;
                if (op.rank > worst.rank) worst = op;
                (*span.ops)[session_pos - 1] = op;
              }
            });
            obs::FlightEnd(worst.rank, worst.score, worst.margin,
                           any_abnormal);
          }
        });
  }
  for (const OperationVerdict& op : verdict.operations) {
    if (op.abnormal) {
      verdict.abnormal = true;
      break;
    }
  }
  if (metrics) {
    RecordDetectMetrics(verdict, setup_ms, timer.ElapsedMillis() - setup_ms);
  }
  return verdict;
}

void TransDasDetector::AppendSpans(const std::vector<int>* padded,
                                   const std::vector<int>* keys,
                                   std::vector<OperationVerdict>* ops, int n,
                                   int L, std::vector<BatchSpan>* out) {
  // Window ending at padded index w scores session positions [lo, w]
  // (targets padded[w+1..w+L]). Advance so every position in [1, n) is
  // owned by exactly one window; the tail window is clamped inside the
  // sequence and simply re-derives — but does not own — earlier positions.
  int next = 1;
  while (next < n) {
    const int w = std::min(next + L - 1, n - 1);
    out->push_back(BatchSpan{padded, keys, ops, w, next, n});
    next = w + 1;
  }
}

void TransDasDetector::ScoreSpanBatch(nn::InferenceContext* ctx,
                                      const BatchSpan* spans, int count,
                                      int capacity) const {
  const int L = model_->config().window;
  nn::ScopedKernelTier tier_scope(options_.kernel_tier);
  obs::FlightBegin(spans[0].lo);
  std::vector<int> input;
  input.reserve(static_cast<size_t>(count) * L);
  std::vector<int> rows_from(count);
  for (int b = 0; b < count; ++b) {
    const BatchSpan& s = spans[b];
    input.insert(input.end(), s.padded->begin() + s.w,
                 s.padded->begin() + s.w + L);
    rows_from[b] = s.lo + L - 1 - s.w;
  }
  obs::FlightStageBoundary(obs::FlightStage::kContextAcquire);
  const nn::Tensor& outputs =
      model_->ForwardInferenceBatched(ctx, input, rows_from, capacity);
  const nn::Tensor& logits =
      model_->AllKeyLogitsInferenceBatched(ctx, outputs, rows_from, capacity);
  obs::FlightStageBoundary(obs::FlightStage::kScore);
  // One flight trace covers the whole batch, summarized by its worst
  // verdict; spans write disjoint slots of their sessions' verdict arrays.
  OperationVerdict worst;
  worst.rank = -1;
  bool any_abnormal = false;
  for (int b = 0; b < count; ++b) {
    const BatchSpan& s = spans[b];
    for (int i = rows_from[b]; i < L; ++i) {
      const int session_pos = s.w + i + 1 - L;
      if (session_pos < s.lo || session_pos >= s.n) continue;
      OperationVerdict op;
      op.position = session_pos;
      ScoreKey(logits, b * L + i, (*s.keys)[session_pos], &op);
      if (op.abnormal) any_abnormal = true;
      if (op.rank > worst.rank) worst = op;
      (*s.ops)[session_pos - 1] = op;
    }
  }
  obs::FlightEnd(worst.rank, worst.score, worst.margin, any_abnormal);
}

std::vector<SessionVerdict> TransDasDetector::DetectSessions(
    const std::vector<std::vector<int>>& sessions) const {
  std::vector<SessionVerdict> verdicts(sessions.size());
  const int bw = options_.batch_windows;
  if (!options_.batched || bw <= 1 || options_.use_tape_engine) {
    for (size_t s = 0; s < sessions.size(); ++s) {
      verdicts[s] = DetectSessionImpl(sessions[s], /*shadow=*/false);
    }
    return verdicts;
  }
  UCAD_TRACE_SPAN("detector/sessions");
  const bool metrics = obs::MetricsEnabled();
  util::Timer timer;
  const int L = model_->config().window;
  const int vocab = model_->config().vocab_size;
  // Global span plan in input order: each session contributes its own
  // DetectSession span sequence (same placement, so per-position verdicts
  // are owned by the same windows), and chunking packs spans across session
  // boundaries so clamped tails share batches with their neighbors.
  std::vector<std::vector<int>> padded(sessions.size());
  std::vector<BatchSpan> spans;
  int scored_sessions = 0;
  for (size_t s = 0; s < sessions.size(); ++s) {
    const std::vector<int>& keys = sessions[s];
    const int n = static_cast<int>(keys.size());
    if (n < 2) continue;  // no scorable operation; empty verdict, no metrics
    ++scored_sessions;
    std::vector<int>& pad = padded[s];
    pad.assign(L, 0);
    pad.reserve(static_cast<size_t>(L) + keys.size());
    for (int key : keys) pad.push_back(Sanitize(key, vocab));
    verdicts[s].operations.resize(n - 1);
    AppendSpans(&pad, &keys, &verdicts[s].operations, n, L, &spans);
  }
  const double setup_ms = timer.ElapsedMillis();
  const int64_t chunks = (static_cast<int64_t>(spans.size()) + bw - 1) / bw;
  util::ParallelFor(0, chunks, /*grain=*/1,
                    [this, &spans, bw](int64_t c0, int64_t c1) {
                      for (int64_t c = c0; c < c1; ++c) {
                        const int start = static_cast<int>(c) * bw;
                        const int count = std::min(
                            bw, static_cast<int>(spans.size()) - start);
                        std::unique_ptr<nn::InferenceContext> ctx =
                            AcquireContext();
                        ScoreSpanBatch(ctx.get(), spans.data() + start, count,
                                       bw);
                        ReleaseContext(std::move(ctx));
                      }
                    });
  const double score_ms = timer.ElapsedMillis() - setup_ms;
  for (SessionVerdict& v : verdicts) {
    for (const OperationVerdict& op : v.operations) {
      if (op.abnormal) {
        v.abnormal = true;
        break;
      }
    }
  }
  if (metrics && scored_sessions > 0) {
    // The batch shares one setup + one scoring sweep; amortize both evenly
    // so per-session histograms and the drift monitor keep their meaning.
    const double su = setup_ms / scored_sessions;
    const double sc = score_ms / scored_sessions;
    for (size_t s = 0; s < sessions.size(); ++s) {
      if (sessions[s].size() < 2) continue;
      RecordDetectMetrics(verdicts[s], su, sc);
    }
  }
  return verdicts;
}

}  // namespace ucad::transdas
