#include "transdas/detector.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "nn/tape.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ucad::transdas {

std::vector<int> SessionVerdict::AbnormalPositions() const {
  std::vector<int> out;
  for (const OperationVerdict& op : operations) {
    if (op.abnormal) out.push_back(op.position);
  }
  return out;
}

TransDasDetector::TransDasDetector(TransDasModel* model,
                                   const DetectorOptions& options)
    : model_(model), options_(options) {
  UCAD_CHECK(model_ != nullptr);
  UCAD_CHECK_GE(options_.top_p, 1);
}

void TransDasDetector::ScoreKey(const nn::Tensor& logits, int row, int key,
                                OperationVerdict* op) const {
  const int vocab = logits.cols();
  if (key <= 0 || key >= vocab) {
    // Unknown templates (k0) never match normal intent: worst possible
    // rank, no logit to report, unbounded negative margin.
    op->rank = vocab + 1;
    op->score = 0.0f;
    op->margin = -std::numeric_limits<float>::infinity();
    op->abnormal = true;
    return;
  }
  const float score = logits.at(row, key);
  // One scan computes both the rank (strictly-greater count) and the
  // top-p cutoff (p-th largest logit, observed key included) via a small
  // bounded selection buffer, so rank and margin cannot disagree.
  const int p = std::min(options_.top_p, vocab - 1);
  std::vector<float> top;  // min-first heap of the p largest logits
  top.reserve(p);
  int rank = 1;
  for (int k = 1; k < vocab; ++k) {
    const float v = logits.at(row, k);
    if (k != key && v > score) ++rank;
    if (static_cast<int>(top.size()) < p) {
      top.push_back(v);
      std::push_heap(top.begin(), top.end(), std::greater<float>());
    } else if (v > top.front()) {
      std::pop_heap(top.begin(), top.end(), std::greater<float>());
      top.back() = v;
      std::push_heap(top.begin(), top.end(), std::greater<float>());
    }
  }
  const float cutoff = top.empty() ? score : top.front();
  op->rank = rank;
  op->score = score;
  op->margin = score - cutoff;
  op->abnormal = rank > options_.top_p;
}

namespace {

/// Maps keys outside [0, vocab) to k0 so a corrupted or newer-vocabulary
/// session cannot crash the embedding gather; such keys still rank worst.
int Sanitize(int key, int vocab) { return key >= 0 && key < vocab ? key : 0; }

}  // namespace

int TransDasDetector::RankNextOperation(const std::vector<int>& preceding,
                                        int next_key) const {
  return ScoreNextOperation(preceding, next_key).rank;
}

OperationVerdict TransDasDetector::ScoreNextOperation(
    const std::vector<int>& preceding, int next_key) const {
  const int L = model_->config().window;
  const int vocab = model_->config().vocab_size;
  std::vector<int> window(L, 0);
  const int take = std::min<int>(L, static_cast<int>(preceding.size()));
  for (int i = 0; i < take; ++i) {
    window[L - take + i] =
        Sanitize(preceding[preceding.size() - take + i], vocab);
  }
  nn::Tape tape;
  nn::VarId outputs =
      model_->Forward(&tape, window, /*training=*/false, nullptr);
  nn::VarId logits = model_->AllKeyLogits(&tape, outputs);
  // The last output position carries the contextual intent of the next
  // operation (§5.3).
  OperationVerdict op;
  ScoreKey(tape.value(logits), L - 1, next_key, &op);
  return op;
}

std::vector<TransDasDetector::Candidate> TransDasDetector::ExplainOperation(
    const std::vector<int>& keys, int position, int top_k) const {
  UCAD_CHECK(position >= 1 && position < static_cast<int>(keys.size()));
  const int L = model_->config().window;
  const int vocab = model_->config().vocab_size;
  // Same window placement as the streaming scorer: the preceding sequence
  // ends at `position`-1 and fills the window from the right.
  std::vector<int> window(L, 0);
  const int take = std::min(L, position);
  for (int i = 0; i < take; ++i) {
    window[L - take + i] = Sanitize(keys[position - take + i], vocab);
  }
  nn::Tape tape;
  nn::VarId outputs =
      model_->Forward(&tape, window, /*training=*/false, nullptr);
  nn::VarId logits = model_->AllKeyLogits(&tape, outputs);
  const nn::Tensor& row = tape.value(logits);
  std::vector<Candidate> candidates;
  candidates.reserve(vocab - 1);
  for (int k = 1; k < vocab; ++k) {
    candidates.push_back(Candidate{k, row.at(L - 1, k)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  if (static_cast<int>(candidates.size()) > top_k) {
    candidates.resize(top_k);
  }
  return candidates;
}

namespace {

/// Flushes per-session scoring observations into the default registry:
/// end-to-end latency, session/operation counts, and a running anomaly
/// rate (sessions flagged / sessions scored since process start).
void RecordDetectMetrics(const SessionVerdict& verdict, double latency_ms) {
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  reg.GetHistogram("detector/score_latency_ms")->Observe(latency_ms);
  obs::Counter* sessions = reg.GetCounter("detector/sessions_total");
  obs::Counter* abnormal = reg.GetCounter("detector/abnormal_sessions_total");
  sessions->Increment();
  if (verdict.abnormal) abnormal->Increment();
  reg.GetCounter("detector/operations_total")
      ->Increment(verdict.operations.size());
  reg.GetGauge("detector/anomaly_rate")
      ->Set(static_cast<double>(abnormal->Value()) /
            static_cast<double>(sessions->Value()));
  // Streaming forensics (opt-in): per-op rank/score quantile sketches and
  // the windowed rank-distribution drift detector.
  if (obs::DetectionMonitorEnabled()) {
    obs::DetectionMonitor& monitor = obs::DefaultDetectionMonitor();
    for (const OperationVerdict& op : verdict.operations) {
      monitor.ObserveOperation(op.rank, op.score);
    }
    monitor.ObserveLatency(latency_ms);
  }
}

}  // namespace

SessionVerdict TransDasDetector::DetectSession(
    const std::vector<int>& keys) const {
  UCAD_TRACE_SPAN("detector/session");
  const bool metrics = obs::MetricsEnabled();
  util::Timer timer;
  SessionVerdict verdict;
  if (keys.size() < 2) return verdict;
  const int L = model_->config().window;
  const int n = static_cast<int>(keys.size());

  if (!options_.batched) {
    // Each position's score depends only on the (read-only) model and the
    // session prefix, so positions fan out across the pool; every lane
    // writes its own preallocated verdict slot.
    verdict.operations.resize(n - 1);
    util::ParallelFor(1, n, /*grain=*/1, [this, &keys, &verdict](
                                             int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        std::vector<int> preceding(keys.begin(), keys.begin() + t);
        OperationVerdict op =
            ScoreNextOperation(preceding, keys[static_cast<size_t>(t)]);
        op.position = static_cast<int>(t);
        verdict.operations[t - 1] = op;
      }
    });
    for (const OperationVerdict& op : verdict.operations) {
      if (op.abnormal) {
        verdict.abnormal = true;
        break;
      }
    }
    if (metrics) RecordDetectMetrics(verdict, timer.ElapsedMillis());
    return verdict;
  }

  // Batched mode: one forward pass scores a window of L consecutive
  // operations (output position i carries the intent of input position
  // i+1, exactly the training alignment). Windows advance by L.
  const int vocab = model_->config().vocab_size;
  std::vector<int> padded(L, 0);  // L leading pads so op 1..L-1 get context
  padded.reserve(L + keys.size());
  for (int key : keys) padded.push_back(Sanitize(key, vocab));
  // Window ending at padded index w scores session positions [lo, w]
  // (targets padded[w+1..w+L]). Advance so every position in [1, n) is
  // owned by exactly one window; the tail window is clamped inside the
  // sequence and simply re-derives — but does not own — earlier positions.
  struct WindowSpan {
    int w;   // last padded index covered (window is padded[w .. w+L-1])
    int lo;  // first session position this window owns
  };
  std::vector<WindowSpan> spans;
  int next = 1;
  while (next < n) {
    const int w = std::min(next + L - 1, n - 1);
    spans.push_back(WindowSpan{w, next});
    next = w + 1;
  }
  // The spans own disjoint position ranges, so the forward passes fan out
  // across the pool with each lane writing disjoint verdict slots. The
  // window placement is fixed by (n, L) alone — thread count never changes
  // which window scores a position, so verdicts match the serial walk.
  verdict.operations.resize(n - 1);
  util::ParallelFor(
      0, static_cast<int64_t>(spans.size()), /*grain=*/1,
      [this, &spans, &padded, &keys, &verdict, L, n](int64_t b0, int64_t b1) {
        for (int64_t b = b0; b < b1; ++b) {
          const WindowSpan& span = spans[b];
          std::vector<int> input(padded.begin() + span.w,
                                 padded.begin() + span.w + L);
          nn::Tape tape;
          nn::VarId outputs =
              model_->Forward(&tape, input, /*training=*/false, nullptr);
          nn::VarId logits = model_->AllKeyLogits(&tape, outputs);
          const nn::Tensor& scores = tape.value(logits);
          for (int i = 0; i < L; ++i) {
            const int session_pos = span.w + i + 1 - L;  // target of output i
            if (session_pos < span.lo || session_pos >= n) continue;
            OperationVerdict op;
            op.position = session_pos;
            ScoreKey(scores, i, keys[session_pos], &op);
            verdict.operations[session_pos - 1] = op;
          }
        }
      });
  for (const OperationVerdict& op : verdict.operations) {
    if (op.abnormal) {
      verdict.abnormal = true;
      break;
    }
  }
  if (metrics) RecordDetectMetrics(verdict, timer.ElapsedMillis());
  return verdict;
}

}  // namespace ucad::transdas
