#include "transdas/trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/pool_metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ucad::transdas {

namespace {

/// SplitMix64-style mix of (seed, epoch, window ordinal). Data-parallel
/// training draws each window's dropout and negative samples from its own
/// stream keyed by the window's position in the epoch's shuffled order, so
/// the sampled values depend on neither the thread count nor which worker
/// ran the window.
uint64_t WindowSeed(uint64_t seed, uint64_t epoch, uint64_t ordinal) {
  uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (epoch + 1) +
               0xBF58476D1CE4E5B9ULL * (ordinal + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x != 0 ? x : 0x9E3779B97F4A7C15ULL;
}

}  // namespace

std::vector<TrainingWindow> MakeWindows(
    const std::vector<std::vector<int>>& sessions, int window, int stride) {
  UCAD_CHECK_GT(window, 0);
  UCAD_CHECK_GT(stride, 0);
  std::vector<TrainingWindow> out;
  for (size_t s = 0; s < sessions.size(); ++s) {
    std::vector<int> keys = sessions[s];
    if (static_cast<int>(keys.size()) < window + 1) {
      // Left-pad short sessions with k0 so that the session tail is the
      // prediction target.
      std::vector<int> padded(window + 1 - keys.size(), 0);
      padded.insert(padded.end(), keys.begin(), keys.end());
      keys = std::move(padded);
    }
    for (size_t start = 0; start + window + 1 <= keys.size();
         start += stride) {
      TrainingWindow tw;
      tw.input.assign(keys.begin() + start, keys.begin() + start + window);
      tw.target.assign(keys.begin() + start + 1,
                       keys.begin() + start + window + 1);
      tw.session_index = static_cast<int>(s);
      out.push_back(std::move(tw));
    }
  }
  return out;
}

TransDasTrainer::TransDasTrainer(TransDasModel* model,
                                 const TrainOptions& options)
    : model_(model),
      options_(options),
      optimizer_(model->Params(), options.learning_rate, 0.9f, 0.999f, 1e-8f,
                 options.weight_decay),
      rng_(options.seed) {
  UCAD_CHECK(model_ != nullptr);
}

TransDasTrainer::LossNodes TransDasTrainer::WindowLoss(
    nn::Tape* tape, const TrainingWindow& window,
    const std::vector<std::vector<int>>& session_key_sets,
    const std::vector<double>& negative_weights, util::Rng* rng) {
  const int L = model_->config().window;
  nn::VarId outputs =
      model_->Forward(tape, window.input, /*training=*/true, rng);
  // Desired-key similarities: z+ = sigmoid(O_i · M(x_target_i)), Eq. 10.
  nn::VarId table = model_->embedding().Table(tape);
  nn::VarId pos_embed = tape->EmbeddingGather(table, window.target);
  nn::VarId pos_dot = tape->SumRows(tape->Mul(outputs, pos_embed));  // [L x 1]
  // One-class cross-entropy: -log z+ == -log sigmoid(dot), stable form.
  nn::VarId ce = tape->Scale(tape->SumAll(tape->LogSigmoid(pos_dot)), -1.0f);
  nn::VarId triplet = -1;
  if (options_.use_triplet) {
    // Negative sampling: undesired keys never appear in the source session.
    const std::vector<int>& exclude = session_key_sets[window.session_index];
    const std::unordered_set<int> excluded(exclude.begin(), exclude.end());
    const int vocab = model_->config().vocab_size;
    for (int ns = 0; ns < options_.negative_samples; ++ns) {
      std::vector<int> negatives(L);
      for (int i = 0; i < L; ++i) {
        // Negative keys follow the word2vec unigram^0.75 distribution [27]:
        // frequent keys are sampled (and pushed down) more often, which
        // keeps the inner-product ranking calibrated across the frequency
        // spectrum.
        int key;
        int attempts = 0;
        do {
          key = 1 + static_cast<int>(rng->Categorical(negative_weights));
        } while (excluded.count(key) > 0 && ++attempts < 64);
        if (key <= 0 || key >= vocab) key = 1;
        negatives[i] = key;
      }
      nn::VarId neg_embed = tape->EmbeddingGather(table, negatives);
      nn::VarId neg_dot = tape->SumRows(tape->Mul(outputs, neg_embed));
      // Triplet: max(z- - z+ + g, 0) with z = sigmoid(dot).
      nn::VarId z_pos = tape->Sigmoid(pos_dot);
      nn::VarId z_neg = tape->Sigmoid(neg_dot);
      nn::VarId hinge = tape->Relu(
          tape->AddScalar(tape->Sub(z_neg, z_pos), options_.margin));
      nn::VarId term = tape->SumAll(hinge);
      triplet = (triplet < 0) ? term : tape->Add(triplet, term);
    }
  }
  // Mean over positions keeps gradient magnitudes comparable across L
  // (Tables 4/5 sweep L).
  const float inv_l = 1.0f / static_cast<float>(L);
  LossNodes nodes;
  nodes.ce = tape->Scale(ce, inv_l);
  nodes.triplet = (triplet < 0) ? -1 : tape->Scale(triplet, inv_l);
  nodes.total = (nodes.triplet < 0) ? nodes.ce
                                    : tape->Add(nodes.ce, nodes.triplet);
  return nodes;
}

std::vector<EpochStats> TransDasTrainer::RunEpochs(
    const std::vector<std::vector<int>>& sessions, int epochs, float lr) {
  std::vector<TrainingWindow> windows = MakeWindows(
      sessions, model_->config().window, options_.window_stride);
  UCAD_CHECK(!windows.empty()) << "no training windows";

  // Distinct keys per session, for negative sampling.
  std::vector<std::vector<int>> session_key_sets;
  session_key_sets.reserve(sessions.size());
  for (const auto& s : sessions) {
    std::vector<int> keys = s;
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    session_key_sets.push_back(std::move(keys));
  }

  // Negative-sampling distribution over keys 1..V-1: unigram^0.75 with
  // add-one smoothing so every key can be drawn.
  const int vocab = model_->config().vocab_size;
  std::vector<double> negative_weights(vocab - 1, 0.0);
  for (const auto& s : sessions) {
    for (int key : s) {
      if (key >= 1 && key < vocab) negative_weights[key - 1] += 1.0;
    }
  }
  for (double& w : negative_weights) w = std::pow(w + 1.0, 0.75);

  std::vector<EpochStats> stats;
  stats.reserve(epochs);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (options_.cosine_decay && epochs > 1) {
      const double progress = static_cast<double>(epoch) / (epochs - 1);
      const double scale =
          options_.lr_floor +
          (1.0 - options_.lr_floor) * 0.5 * (1.0 + std::cos(3.14159265 * progress));
      optimizer_.set_lr(static_cast<float>(lr * scale));
    } else {
      optimizer_.set_lr(lr);
    }
    UCAD_TRACE_SPAN("trainer/epoch");
    util::Timer timer;
    rng_.Shuffle(&windows);
    double total_loss = 0.0;
    double total_ce = 0.0;
    double total_triplet = 0.0;
    double total_grad_norm = 0.0;
    const int batch = std::max(1, options_.batch_size);
    int num_steps = 0;
    if (batch <= 1) {
      // Historical per-window SGD walk: one shared RNG stream, one Adam
      // step per window. Kept byte-for-byte so batch_size=1 runs reproduce
      // every pre-existing checkpoint and test expectation.
      for (const TrainingWindow& window : windows) {
        UCAD_TRACE_SPAN("trainer/step");
        tape_.Reset();
        LossNodes loss = WindowLoss(&tape_, window, session_key_sets,
                                    negative_weights, &rng_);
        total_loss += tape_.value(loss.total).at(0, 0);
        total_ce += tape_.value(loss.ce).at(0, 0);
        if (loss.triplet >= 0)
          total_triplet += tape_.value(loss.triplet).at(0, 0);
        tape_.Backward(loss.total);
        total_grad_norm += options_.grad_clip > 0.0f
                               ? optimizer_.ClipGradNorm(options_.grad_clip)
                               : optimizer_.GradNorm();
        optimizer_.Step();
        model_->FreezePaddingRow();
        ++num_steps;
      }
    } else {
      // Data-parallel minibatches: each window in a batch gets its own
      // tape, gradient sink, and RNG stream, so concurrent lanes share
      // only read-only state (model weights, key sets). The merge below is
      // a fixed-order tree, making the result invariant to UCAD_THREADS.
      const size_t nw = windows.size();
      std::vector<double> w_loss(batch), w_ce(batch), w_triplet(batch);
      if (static_cast<int>(batch_tapes_.size()) < batch) {
        batch_tapes_.resize(batch);
      }
      for (auto& t : batch_tapes_) {
        if (t == nullptr) t = std::make_unique<nn::Tape>();
      }
      if (static_cast<int>(w_grads_.size()) < batch) w_grads_.resize(batch);
      for (size_t start = 0; start < nw; start += batch) {
        UCAD_TRACE_SPAN("trainer/step");
        const int bsz = static_cast<int>(std::min<size_t>(batch, nw - start));
        // Pre-seed every lane's sink with a zeroed tensor per parameter
        // (allocated once, zeroed thereafter): Backward accumulates into
        // them and the merge below always finds its target, so gradient
        // storage survives from step to step instead of being reallocated.
        for (int j = 0; j < bsz; ++j) {
          for (nn::Parameter* p : optimizer_.params()) {
            auto it = w_grads_[j].find(p);
            if (it == w_grads_[j].end()) {
              w_grads_[j].emplace(
                  p, nn::Tensor(p->value().rows(), p->value().cols()));
            } else {
              it->second.SetZero();
            }
          }
        }
        util::ParallelFor(0, bsz, 1, [&](int64_t j0, int64_t j1) {
          for (int64_t j = j0; j < j1; ++j) {
            const TrainingWindow& window = windows[start + j];
            util::Rng wrng(WindowSeed(options_.seed,
                                      static_cast<uint64_t>(epoch),
                                      start + j));
            nn::Tape& tape = *batch_tapes_[j];
            tape.Reset();
            LossNodes loss = WindowLoss(&tape, window, session_key_sets,
                                        negative_weights, &wrng);
            w_loss[j] = tape.value(loss.total).at(0, 0);
            w_ce[j] = tape.value(loss.ce).at(0, 0);
            w_triplet[j] =
                loss.triplet >= 0 ? tape.value(loss.triplet).at(0, 0) : 0.0;
            tape.Backward(loss.total, &w_grads_[j]);
          }
        });
        // Pairwise tree reduction in index order: the merge sequence
        // depends only on bsz, never on worker finish order, and each
        // parameter's partial sums combine in the same order every run.
        for (int width = 1; width < bsz; width *= 2) {
          for (int j = 0; j + width < bsz; j += 2 * width) {
            for (auto& [param, grad] : w_grads_[j + width]) {
              w_grads_[j].find(param)->second.AddInPlace(grad);
            }
          }
        }
        // Mean gradient over the batch, then a single Adam step.
        const float inv_b = 1.0f / static_cast<float>(bsz);
        for (nn::Parameter* p : optimizer_.params()) {
          auto it = w_grads_[0].find(p);
          if (it != w_grads_[0].end()) p->grad().AddScaled(it->second, inv_b);
        }
        for (int j = 0; j < bsz; ++j) {
          total_loss += w_loss[j];
          total_ce += w_ce[j];
          total_triplet += w_triplet[j];
        }
        total_grad_norm += options_.grad_clip > 0.0f
                               ? optimizer_.ClipGradNorm(options_.grad_clip)
                               : optimizer_.GradNorm();
        optimizer_.Step();
        model_->FreezePaddingRow();
        ++num_steps;
      }
    }
    EpochStats es;
    es.windows = static_cast<int>(windows.size());
    es.mean_loss = total_loss / windows.size();
    es.ce_loss = total_ce / windows.size();
    es.triplet_loss = total_triplet / windows.size();
    es.grad_norm = total_grad_norm / std::max(num_steps, 1);
    double param_sq_norm = 0.0;
    for (const nn::Parameter* p : optimizer_.params()) {
      param_sq_norm += p->value().SquaredNorm();
    }
    es.l2_penalty = 0.5 * options_.weight_decay * param_sq_norm;
    es.seconds = timer.ElapsedSeconds();
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry& reg = obs::DefaultMetrics();
      reg.GetGauge("trainer/epoch_loss_total")->Set(es.mean_loss);
      reg.GetGauge("trainer/epoch_loss_ce")->Set(es.ce_loss);
      reg.GetGauge("trainer/epoch_loss_triplet")->Set(es.triplet_loss);
      reg.GetGauge("trainer/epoch_loss_l2")->Set(es.l2_penalty);
      reg.GetGauge("trainer/grad_norm")->Set(es.grad_norm);
      reg.GetGauge("trainer/windows_per_sec")->Set(es.WindowsPerSecond());
      reg.GetCounter("trainer/epochs_total")->Increment();
      reg.GetCounter("trainer/windows_total")->Increment(windows.size());
      reg.GetHistogram("trainer/epoch_seconds")->Observe(es.seconds);
      reg.GetGauge("trainer/batch_size")->Set(batch);
      obs::PublishThreadPoolMetrics(&reg);
    }
    if (options_.verbose) {
      UCAD_LOG(INFO) << "epoch " << epoch + 1 << "/" << epochs << " loss "
                     << es.mean_loss << " (ce " << es.ce_loss << ", triplet "
                     << es.triplet_loss << ", l2 " << es.l2_penalty
                     << ", |grad| " << es.grad_norm << "; " << es.windows
                     << " windows, " << es.seconds << "s, "
                     << es.WindowsPerSecond() << " win/s)";
    }
    stats.push_back(es);
  }
  return stats;
}

std::vector<EpochStats> TransDasTrainer::Train(
    const std::vector<std::vector<int>>& sessions) {
  UCAD_TRACE_SPAN("trainer/train");
  return RunEpochs(sessions, options_.epochs, options_.learning_rate);
}

std::vector<EpochStats> TransDasTrainer::FineTune(
    const std::vector<std::vector<int>>& sessions, int epochs,
    float lr_scale) {
  UCAD_TRACE_SPAN("trainer/finetune");
  return RunEpochs(sessions, epochs, options_.learning_rate * lr_scale);
}

}  // namespace ucad::transdas
