#ifndef UCAD_TRANSDAS_SERIALIZATION_H_
#define UCAD_TRANSDAS_SERIALIZATION_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "sql/vocabulary.h"
#include "transdas/model.h"
#include "util/status.h"

namespace ucad::transdas {

/// A deserialized detection bundle: the model plus the frozen statement
/// vocabulary it was trained against.
struct ModelBundle {
  std::unique_ptr<TransDasModel> model;
  sql::Vocabulary vocabulary;
};

/// Serializes a trained model and its vocabulary into a self-describing
/// binary stream (config, every parameter tensor, every statement
/// template). The stream can be reloaded with LoadModel to resume
/// detection or fine-tuning in a later process.
util::Status SaveModel(TransDasModel* model, const sql::Vocabulary& vocab,
                       std::ostream& os);

/// Convenience wrapper writing to a file.
util::Status SaveModelToFile(TransDasModel* model,
                             const sql::Vocabulary& vocab,
                             const std::string& path);

/// Reconstructs a model bundle from a stream produced by SaveModel.
/// Returns InvalidArgument / OutOfRange on malformed input.
util::Result<ModelBundle> LoadModel(std::istream& is);

/// Convenience wrapper reading from a file (NotFound if unreadable).
util::Result<ModelBundle> LoadModelFromFile(const std::string& path);

}  // namespace ucad::transdas

#endif  // UCAD_TRANSDAS_SERIALIZATION_H_
