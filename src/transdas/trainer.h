#ifndef UCAD_TRANSDAS_TRAINER_H_
#define UCAD_TRANSDAS_TRAINER_H_

#include <memory>
#include <vector>

#include "nn/optimizer.h"
#include "transdas/config.h"
#include "transdas/model.h"

namespace ucad::transdas {

/// One training window: the model input and its forward-shifted target
/// (paper Figure 4), plus the set of keys appearing in the source session
/// (for negative sampling, which draws keys *not* in the session).
struct TrainingWindow {
  std::vector<int> input;    // length L
  std::vector<int> target;   // length L (input shifted by one)
  int session_index = 0;     // which session produced the window
};

/// Slices tokenized sessions into sliding windows of `window` keys with
/// the given stride. Sessions shorter than window+1 are left-padded with
/// k0. Every session yields at least one window.
std::vector<TrainingWindow> MakeWindows(
    const std::vector<std::vector<int>>& sessions, int window, int stride);

/// Per-epoch training statistics (Tables 4 and 5 report time per epoch).
/// The combined loss (Eq. 11) is also broken into its terms so divergence
/// of one component is visible: mean_loss = ce_loss + triplet_loss, with
/// the L2 term realized as weight decay and reported as l2_penalty.
struct EpochStats {
  double mean_loss = 0.0;
  /// Mean one-class cross-entropy component per window.
  double ce_loss = 0.0;
  /// Mean triplet (hinge) component per window; 0 when use_triplet is off.
  double triplet_loss = 0.0;
  /// (weight_decay / 2) * ||θ||² at epoch end — the Eq. 11 L2 term as
  /// realized by decoupled weight decay.
  double l2_penalty = 0.0;
  /// Mean pre-clip global gradient L2 norm over the epoch's steps.
  double grad_norm = 0.0;
  double seconds = 0.0;
  int windows = 0;

  /// Training throughput (windows processed per wall-clock second).
  double WindowsPerSecond() const {
    return seconds > 0.0 ? windows / seconds : 0.0;
  }
};

/// Offline trainer for Trans-DAS (§5.2): unsupervised next-sequence
/// prediction with the combined triplet + one-class cross-entropy + L2
/// objective (Eq. 11), negative sampling for the undesired keys, and a
/// fine-tuning entry point for concept drift.
class TransDasTrainer {
 public:
  /// The model must outlive the trainer.
  TransDasTrainer(TransDasModel* model, const TrainOptions& options);

  /// Trains on the purified normal sessions; returns per-epoch stats.
  std::vector<EpochStats> Train(
      const std::vector<std::vector<int>>& sessions);

  /// Fine-tunes on newly verified normal sessions (concept drift, §5.2):
  /// a shorter run at a reduced learning rate that retains prior knowledge
  /// instead of retraining from scratch.
  std::vector<EpochStats> FineTune(
      const std::vector<std::vector<int>>& sessions, int epochs = 2,
      float lr_scale = 0.1f);

  const TrainOptions& options() const { return options_; }

 private:
  /// Scalar nodes of one window's loss graph: total = ce + triplet (each
  /// already scaled by 1/L). `triplet` is -1 when the triplet term is off.
  struct LossNodes {
    nn::VarId total;
    nn::VarId ce;
    nn::VarId triplet;
  };

  /// Builds the loss graph for one window; returns the scalar loss nodes.
  /// `negative_weights[k-1]` is the (unnormalized) probability of drawing
  /// key k as a negative sample (word2vec unigram^0.75 [27]).
  LossNodes WindowLoss(nn::Tape* tape, const TrainingWindow& window,
                       const std::vector<std::vector<int>>& session_key_sets,
                       const std::vector<double>& negative_weights,
                       util::Rng* rng);

  std::vector<EpochStats> RunEpochs(
      const std::vector<std::vector<int>>& sessions, int epochs, float lr);

  TransDasModel* model_;
  TrainOptions options_;
  nn::Adam optimizer_;
  util::Rng rng_;
  /// Reused across windows via Tape::Reset(), so the per-window loop stops
  /// reallocating node storage and tensors once the pool is warm
  /// (batch_size == 1 path).
  nn::Tape tape_;
  /// Per-lane tapes and gradient sinks for the data-parallel path, indexed
  /// by position-in-batch; persistent for the same reason. The sinks are
  /// pre-seeded with one zeroed tensor per parameter each step, so the
  /// fixed-order merge always adds in place and never steals tensors.
  std::vector<std::unique_ptr<nn::Tape>> batch_tapes_;
  std::vector<nn::Tape::ParamGradMap> w_grads_;
};

}  // namespace ucad::transdas

#endif  // UCAD_TRANSDAS_TRAINER_H_
