#ifndef UCAD_TRANSDAS_CONFIG_H_
#define UCAD_TRANSDAS_CONFIG_H_

#include <cstdint>

#include "nn/simd.h"

namespace ucad::transdas {

/// Attention masking schemes. Trans-DAS's contribution is
/// kBidirectionalSkipNext; the others exist for the Table 3 ablation.
enum class MaskMode {
  /// No mask (original transformer encoder): the prediction of an operation
  /// is influenced by the operation itself.
  kNone,
  /// Future mask (original transformer decoder): output i attends only to
  /// inputs j <= i — unidirectional context.
  kCausal,
  /// Trans-DAS: output i attends to every input except j == i+1 (the
  /// operation being predicted), i.e. bidirectional context minus self.
  kBidirectionalSkipNext,
};

/// Hyper-parameters of a Trans-DAS (or ablation-variant) model. Defaults
/// follow the paper's Scenario-I setting (§6.1): L=30, g=0.5, h=10, m=2,
/// B=6.
struct TransDasConfig {
  /// Vocabulary size including key k0 (padding/unknown).
  int vocab_size = 0;
  /// Sliding-window length L (the input sequence size).
  int window = 30;
  /// Hidden dimension h.
  int hidden_dim = 10;
  /// Number of attention heads m (must divide hidden_dim).
  int num_heads = 2;
  /// Number of stacked attention blocks B.
  int num_blocks = 6;
  /// Dropout rate used in the regularization of Eq. 5.
  float dropout = 0.1f;

  // --- Ablation switches (Table 3) ---
  /// Trans-DAS removes the position encoding; the base transformer keeps a
  /// learnable one.
  bool use_position_embedding = false;
  /// Trans-DAS uses kBidirectionalSkipNext.
  MaskMode mask_mode = MaskMode::kBidirectionalSkipNext;

  /// Returns the base-transformer variant of this config.
  TransDasConfig BaseTransformer() const {
    TransDasConfig c = *this;
    c.use_position_embedding = true;
    c.mask_mode = MaskMode::kCausal;
    return c;
  }
};

/// Training options (§5.2). The L2 term of the loss (Eq. 11) is realized as
/// weight decay, which is equivalent for SGD-family updates.
struct TrainOptions {
  int epochs = 10;
  float learning_rate = 3e-3f;
  /// Triplet-loss margin g.
  float margin = 0.5f;
  /// Negative samples per window (keys never appearing in the session).
  int negative_samples = 1;
  /// L2 coefficient (the ||θ||₂ term).
  float weight_decay = 1e-4f;
  /// Window stride when slicing sessions into training windows.
  int window_stride = 1;
  /// Global gradient-norm clip (0 disables).
  float grad_clip = 5.0f;
  /// Use the triplet component (Trans-DAS objective); when false only the
  /// one-class cross-entropy is used (Table 3 base objective).
  bool use_triplet = true;
  /// Cosine learning-rate decay to `lr_floor * learning_rate` over the
  /// epochs (disabled when false).
  bool cosine_decay = true;
  float lr_floor = 0.1f;
  /// Seed for shuffling, dropout, and negative sampling.
  uint64_t seed = 7;
  /// Print per-epoch progress.
  bool verbose = false;
  /// Windows per optimizer step. 1 reproduces the paper's per-window SGD
  /// walk exactly (the historical behavior). Above 1 the trainer computes
  /// the windows' gradients data-parallel across the global thread pool
  /// (per-window tape + gradient buffer, per-window RNG stream split from
  /// `seed`), merges them with a fixed-order tree reduction, and applies
  /// one Adam step on the mean gradient — results are identical at any
  /// UCAD_THREADS value.
  int batch_size = 1;
};

/// Online detection options (§5.3).
struct DetectorOptions {
  /// An operation is normal when its similarity to the predicted contextual
  /// intent ranks in the top-p over all keys.
  int top_p = 5;
  /// Batched mode scores a full window of operations per forward pass
  /// (training-consistent bidirectional context; ~L× faster). Non-batched
  /// mode reproduces the paper's per-operation "preceding sequence" scoring
  /// exactly.
  bool batched = true;
  /// Run forward passes through the recording autograd tape instead of the
  /// tape-free nn/infer engine. Both produce bitwise-identical logits
  /// (docs/INFERENCE.md); the tape engine exists as the reference
  /// implementation and costs graph recording + per-node allocation on
  /// every window.
  bool use_tape_engine = false;
  /// When > 1 (and the fused engine is in use), batched DetectSession spans
  /// are packed up to `batch_windows` at a time into multi-window GEMMs
  /// (ForwardInferenceBatched); DetectSessions() additionally packs spans
  /// across sessions. Verdicts are identical to the from-scratch path
  /// (docs/INFERENCE.md "Incremental & batched scoring"). 0/1 keeps the
  /// per-window PR 5 fused path.
  int batch_windows = 0;
  /// Reuse per-position embedding + block-0 Q|K|V rows across consecutive
  /// window slides in ScoreNextOperation via the context's WindowSlideCache.
  /// Only effective when the model has no position embedding
  /// (SupportsSlideCache()); verdicts and logits stay bitwise identical to
  /// the from-scratch path.
  bool incremental = false;
  /// Kernel tier of the inference engine (docs/INFERENCE.md "Kernel
  /// tiers"). kReference (default) keeps the bitwise tape-parity contract;
  /// kVectorized runs the runtime-dispatched relaxed SIMD kernels
  /// (verdict-identity contract); kInt8 additionally quantizes the packed
  /// Q|K|V and all-key-logits GEMM weights to int8 with per-row scales.
  /// Ignored (always reference) when use_tape_engine is set. Composes with
  /// batched / batch_windows / incremental.
  nn::KernelTier kernel_tier = nn::KernelTier::kReference;
};

}  // namespace ucad::transdas

#endif  // UCAD_TRANSDAS_CONFIG_H_
