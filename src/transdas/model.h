#ifndef UCAD_TRANSDAS_MODEL_H_
#define UCAD_TRANSDAS_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/infer.h"
#include "nn/module.h"
#include "nn/tape.h"
#include "transdas/config.h"
#include "util/rng.h"

namespace ucad::transdas {

/// The Trans-DAS network (§4): an order-free embedding layer followed by B
/// stacked attention blocks, each a multi-head self-attention layer with
/// the skip-next bidirectional mask plus a point-wise feed-forward layer,
/// both wrapped in residual + layer-norm + dropout regularization (Eq. 5).
///
/// The same class also instantiates the ablation variants of Table 3 via
/// TransDasConfig (position embedding on/off, mask mode).
class TransDasModel {
 public:
  TransDasModel(const TransDasConfig& config, util::Rng* rng);

  TransDasModel(const TransDasModel&) = delete;
  TransDasModel& operator=(const TransDasModel&) = delete;

  /// Builds the forward graph for one window of `config.window` keys and
  /// returns the last block's output O^(B), a [L x h] node. When
  /// `first_block_attention` is non-null it receives the VarIds of the
  /// first block's per-head attention matrices ([L x L] each, Figure 6).
  nn::VarId Forward(nn::Tape* tape, const std::vector<int>& window,
                    bool training, util::Rng* dropout_rng,
                    std::vector<nn::VarId>* first_block_attention = nullptr);

  /// Similarity logits of each output position against every key:
  /// logits = O M^T, a [L x vocab] node (Eq. 10 before the sigmoid).
  nn::VarId AllKeyLogits(nn::Tape* tape, nn::VarId outputs);

  /// Tape-free forward for the detection hot path: same math as
  /// Forward(training=false) through the fused kernels in nn/infer, using
  /// `ctx`'s workspace instead of tape nodes — no graph recording, no
  /// gradient bookkeeping, zero allocations at steady state. The returned
  /// [L x h] tensor lives in the workspace and is valid until the next
  /// forward on the same context. Bitwise-identical to the tape path on
  /// every computed row (docs/INFERENCE.md); the tape path remains the
  /// training/gradcheck reference.
  ///
  /// `rows_from` restricts the final block's row-wise tail (attention
  /// query rows, FFN, layer norms) to output rows >= rows_from: every
  /// earlier block and the final block's keys/values still see the whole
  /// window, so computed rows match the full forward bitwise, but rows
  /// below `rows_from` of the result are unspecified. Callers that only
  /// score a tail of the window (the detector's clamped spans and the
  /// streaming scorer) skip the rest of the last block's work.
  const nn::Tensor& ForwardInference(nn::InferenceContext* ctx,
                                     const std::vector<int>& window,
                                     int rows_from = 0);

  /// Tape-free Eq. 10 logits ([L x vocab]) for ForwardInference outputs,
  /// computed for rows >= rows_from (earlier rows unspecified). The
  /// transposed embedding table is cached on the context and invalidated
  /// by weight_version().
  const nn::Tensor& AllKeyLogitsInference(nn::InferenceContext* ctx,
                                          const nn::Tensor& outputs,
                                          int rows_from = 0);

  /// All trainable parameters.
  std::vector<nn::Parameter*> Params();

  /// Pins the k0 embedding row back to zero; call after optimizer steps.
  /// Also bumps weight_version() so inference-context weight caches rebuild.
  void FreezePaddingRow() {
    embedding_->FreezePaddingRow();
    MarkWeightsUpdated();
  }

  /// Monotonic counter bumped on every weight mutation; keys the derived
  /// weight caches held by InferenceContexts.
  uint64_t weight_version() const { return weight_version_; }

  /// Call after mutating parameters outside the optimizer path (e.g.
  /// deserialization) so cached derived weights are invalidated.
  void MarkWeightsUpdated() { ++weight_version_; }

  const TransDasConfig& config() const { return config_; }
  nn::Embedding& embedding() { return *embedding_; }

 private:
  struct Head {
    nn::Parameter wq;  // [h x h/m]
    nn::Parameter wk;
    nn::Parameter wv;
  };
  struct Block {
    std::vector<Head> heads;
    nn::Parameter wo;  // [h x h]
    std::unique_ptr<nn::LayerNorm> ln_attention;
    nn::Parameter w1;  // FFN [h x h]
    nn::Parameter b1;  // [1 x h]
    nn::Parameter w2;  // [h x h]
    nn::Parameter b2;  // [1 x h]
    std::unique_ptr<nn::LayerNorm> ln_ffn;
  };

  /// The additive attention mask for the configured mode ([L x L] with 0 /
  /// -inf entries), built once.
  nn::Tensor BuildMask() const;

  TransDasConfig config_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Parameter> position_embedding_;  // null unless enabled
  std::vector<Block> blocks_;
  nn::Tensor mask_;
  uint64_t weight_version_ = 1;
};

}  // namespace ucad::transdas

#endif  // UCAD_TRANSDAS_MODEL_H_
