#ifndef UCAD_TRANSDAS_MODEL_H_
#define UCAD_TRANSDAS_MODEL_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "nn/tape.h"
#include "transdas/config.h"
#include "util/rng.h"

namespace ucad::transdas {

/// The Trans-DAS network (§4): an order-free embedding layer followed by B
/// stacked attention blocks, each a multi-head self-attention layer with
/// the skip-next bidirectional mask plus a point-wise feed-forward layer,
/// both wrapped in residual + layer-norm + dropout regularization (Eq. 5).
///
/// The same class also instantiates the ablation variants of Table 3 via
/// TransDasConfig (position embedding on/off, mask mode).
class TransDasModel {
 public:
  TransDasModel(const TransDasConfig& config, util::Rng* rng);

  TransDasModel(const TransDasModel&) = delete;
  TransDasModel& operator=(const TransDasModel&) = delete;

  /// Builds the forward graph for one window of `config.window` keys and
  /// returns the last block's output O^(B), a [L x h] node. When
  /// `first_block_attention` is non-null it receives the VarIds of the
  /// first block's per-head attention matrices ([L x L] each, Figure 6).
  nn::VarId Forward(nn::Tape* tape, const std::vector<int>& window,
                    bool training, util::Rng* dropout_rng,
                    std::vector<nn::VarId>* first_block_attention = nullptr);

  /// Similarity logits of each output position against every key:
  /// logits = O M^T, a [L x vocab] node (Eq. 10 before the sigmoid).
  nn::VarId AllKeyLogits(nn::Tape* tape, nn::VarId outputs);

  /// All trainable parameters.
  std::vector<nn::Parameter*> Params();

  /// Pins the k0 embedding row back to zero; call after optimizer steps.
  void FreezePaddingRow() { embedding_->FreezePaddingRow(); }

  const TransDasConfig& config() const { return config_; }
  nn::Embedding& embedding() { return *embedding_; }

 private:
  struct Head {
    nn::Parameter wq;  // [h x h/m]
    nn::Parameter wk;
    nn::Parameter wv;
  };
  struct Block {
    std::vector<Head> heads;
    nn::Parameter wo;  // [h x h]
    std::unique_ptr<nn::LayerNorm> ln_attention;
    nn::Parameter w1;  // FFN [h x h]
    nn::Parameter b1;  // [1 x h]
    nn::Parameter w2;  // [h x h]
    nn::Parameter b2;  // [1 x h]
    std::unique_ptr<nn::LayerNorm> ln_ffn;
  };

  /// The additive attention mask for the configured mode ([L x L] with 0 /
  /// -inf entries), built once.
  nn::Tensor BuildMask() const;

  TransDasConfig config_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Parameter> position_embedding_;  // null unless enabled
  std::vector<Block> blocks_;
  nn::Tensor mask_;
};

}  // namespace ucad::transdas

#endif  // UCAD_TRANSDAS_MODEL_H_
