#ifndef UCAD_TRANSDAS_MODEL_H_
#define UCAD_TRANSDAS_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "nn/infer.h"
#include "nn/module.h"
#include "nn/tape.h"
#include "transdas/config.h"
#include "util/rng.h"

namespace ucad::transdas {

/// The Trans-DAS network (§4): an order-free embedding layer followed by B
/// stacked attention blocks, each a multi-head self-attention layer with
/// the skip-next bidirectional mask plus a point-wise feed-forward layer,
/// both wrapped in residual + layer-norm + dropout regularization (Eq. 5).
///
/// The same class also instantiates the ablation variants of Table 3 via
/// TransDasConfig (position embedding on/off, mask mode).
class TransDasModel {
 public:
  TransDasModel(const TransDasConfig& config, util::Rng* rng);

  TransDasModel(const TransDasModel&) = delete;
  TransDasModel& operator=(const TransDasModel&) = delete;

  /// Builds the forward graph for one window of `config.window` keys and
  /// returns the last block's output O^(B), a [L x h] node. When
  /// `first_block_attention` is non-null it receives the VarIds of the
  /// first block's per-head attention matrices ([L x L] each, Figure 6).
  nn::VarId Forward(nn::Tape* tape, const std::vector<int>& window,
                    bool training, util::Rng* dropout_rng,
                    std::vector<nn::VarId>* first_block_attention = nullptr);

  /// Similarity logits of each output position against every key:
  /// logits = O M^T, a [L x vocab] node (Eq. 10 before the sigmoid).
  nn::VarId AllKeyLogits(nn::Tape* tape, nn::VarId outputs);

  /// Tape-free forward for the detection hot path: same math as
  /// Forward(training=false) through the fused kernels in nn/infer, using
  /// `ctx`'s workspace instead of tape nodes — no graph recording, no
  /// gradient bookkeeping, zero allocations at steady state. The returned
  /// [L x h] tensor lives in the workspace and is valid until the next
  /// forward on the same context. Bitwise-identical to the tape path on
  /// every computed row (docs/INFERENCE.md); the tape path remains the
  /// training/gradcheck reference.
  ///
  /// `rows_from` restricts the final block's row-wise tail (attention
  /// query rows, FFN, layer norms) to output rows >= rows_from: every
  /// earlier block and the final block's keys/values still see the whole
  /// window, so computed rows match the full forward bitwise, but rows
  /// below `rows_from` of the result are unspecified. Callers that only
  /// score a tail of the window (the detector's clamped spans and the
  /// streaming scorer) skip the rest of the last block's work.
  ///
  /// With `slide` (and SupportsSlideCache()), the context's WindowSlideCache
  /// supplies the embedding rows and block-0 packed Q|K|V rows: an exact-
  /// match or one-position-slide window recomputes at most the newly
  /// arrived row of both (everything deeper depends on the whole window and
  /// is recomputed). The cache is keyed by the sanitized window keys plus
  /// (model, weight_version), so interleaved sessions and weight hot-swaps
  /// can only cause misses, never wrong rows — equal keys at equal version
  /// imply bitwise-equal rows, keeping the slide path bitwise identical to
  /// the from-scratch forward.
  const nn::Tensor& ForwardInference(nn::InferenceContext* ctx,
                                     const std::vector<int>& window,
                                     int rows_from = 0, bool slide = false);

  /// Multi-window batched forward: `keys` holds `rows_from.size()` windows
  /// of L keys concatenated (windows may come from different sessions —
  /// rows never mix across windows, attention is block-diagonal), and the
  /// per-block projections run as single [B*L x ...] GEMMs through the
  /// context's batch workspace. The returned [capacity*L x h] tensor's row
  /// b*L + i is bitwise ForwardInference(window b, rows_from[b])'s row i for
  /// i >= rows_from[b] (rows below each window's cut, and the rows of
  /// unused slots beyond B, are unspecified). `capacity` (>= B) fixes the
  /// buffer shapes so partially filled batches reuse the same workspace
  /// slots. The attention-capture hook is not supported on this path.
  const nn::Tensor& ForwardInferenceBatched(nn::InferenceContext* ctx,
                                            const std::vector<int>& keys,
                                            const std::vector<int>& rows_from,
                                            int capacity);

  /// Tape-free Eq. 10 logits ([L x vocab]) for ForwardInference outputs,
  /// computed for rows >= rows_from (earlier rows unspecified). The
  /// transposed embedding table is cached on the context and invalidated
  /// by weight_version().
  const nn::Tensor& AllKeyLogitsInference(nn::InferenceContext* ctx,
                                          const nn::Tensor& outputs,
                                          int rows_from = 0);

  /// Batched Eq. 10 logits ([capacity*L x vocab]) for
  /// ForwardInferenceBatched outputs: row b*L + i computed exactly when
  /// i >= rows_from[b], bitwise equal to the single-window kernel's row.
  const nn::Tensor& AllKeyLogitsInferenceBatched(
      nn::InferenceContext* ctx, const nn::Tensor& outputs,
      const std::vector<int>& rows_from, int capacity);

  /// Whether the cross-window slide cache applies: per-position rows are
  /// reusable across slides only because the embedding (and hence block-0
  /// QKV) row is a pure function of the key — a position embedding makes
  /// rows position-dependent, so those configs always recompute.
  bool SupportsSlideCache() const { return position_embedding_ == nullptr; }

  /// All trainable parameters.
  std::vector<nn::Parameter*> Params();

  /// Pins the k0 embedding row back to zero; call after optimizer steps.
  /// Also bumps weight_version() so inference-context weight caches rebuild.
  void FreezePaddingRow() {
    embedding_->FreezePaddingRow();
    MarkWeightsUpdated();
  }

  /// Monotonic counter bumped on every weight mutation; keys the derived
  /// weight caches held by InferenceContexts.
  uint64_t weight_version() const { return weight_version_; }

  /// Call after mutating parameters outside the optimizer path (e.g.
  /// deserialization) so cached derived weights are invalidated.
  void MarkWeightsUpdated() { ++weight_version_; }

  const TransDasConfig& config() const { return config_; }
  nn::Embedding& embedding() { return *embedding_; }

  /// Test seam for the weight-version staleness contract: invoked once per
  /// block inside every inference forward, right after that block's derived
  /// weights were resolved, with (block index, the weight-version snapshot
  /// the forward pinned at entry). Tests use it to bump weight_version()
  /// mid-forward and assert the forward never mixes versions.
  void SetBlockWeightsHookForTest(std::function<void(int, uint64_t)> hook) {
    on_block_weights_for_test_ = std::move(hook);
  }

 private:
  struct Head {
    nn::Parameter wq;  // [h x h/m]
    nn::Parameter wk;
    nn::Parameter wv;
  };
  struct Block {
    std::vector<Head> heads;
    nn::Parameter wo;  // [h x h]
    std::unique_ptr<nn::LayerNorm> ln_attention;
    nn::Parameter w1;  // FFN [h x h]
    nn::Parameter b1;  // [1 x h]
    nn::Parameter w2;  // [h x h]
    nn::Parameter b2;  // [1 x h]
    std::unique_ptr<nn::LayerNorm> ln_ffn;
  };

  /// The additive attention mask for the configured mode ([L x L] with 0 /
  /// -inf entries), built once.
  nn::Tensor BuildMask() const;

  /// The packed per-block Q|K|V projection ([h x packed_cols]) resolved
  /// through the context's derived-weight cache at version `wv` — the
  /// weight-version snapshot a forward pins at entry, so one forward can
  /// never mix projection versions even if MarkWeightsUpdated lands
  /// mid-pass.
  const nn::Tensor& PackedQkv(nn::InferenceContext* ctx, size_t block_index,
                              uint64_t wv, int packed_cols);

  /// Int8 per-row-quantized transpose of PackedQkv (row j of the quantized
  /// weight is packed column j — the B^T row layout Int8GemmKernel wants),
  /// resolved through the context's quantized-weight cache at the same
  /// pinned version. Only consulted on the kInt8 tier.
  const nn::QuantizedWeight& QuantizedPackedQkv(nn::InferenceContext* ctx,
                                                size_t block_index,
                                                uint64_t wv, int packed_cols);

  TransDasConfig config_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Parameter> position_embedding_;  // null unless enabled
  std::vector<Block> blocks_;
  nn::Tensor mask_;
  uint64_t weight_version_ = 1;
  std::function<void(int, uint64_t)> on_block_weights_for_test_;
};

}  // namespace ucad::transdas

#endif  // UCAD_TRANSDAS_MODEL_H_
