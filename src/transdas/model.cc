#include "transdas/model.h"

#include <cmath>

#include "sql/vocabulary.h"
#include "util/logging.h"

namespace ucad::transdas {

namespace {
constexpr float kMaskValue = -1e9f;
}  // namespace

TransDasModel::TransDasModel(const TransDasConfig& config, util::Rng* rng)
    : config_(config) {
  UCAD_CHECK_GT(config_.vocab_size, 1);
  UCAD_CHECK_GT(config_.window, 0);
  UCAD_CHECK_GT(config_.hidden_dim, 0);
  UCAD_CHECK_GT(config_.num_heads, 0);
  UCAD_CHECK_EQ(config_.hidden_dim % config_.num_heads, 0)
      << "num_heads must divide hidden_dim";
  UCAD_CHECK_GT(config_.num_blocks, 0);

  embedding_ = std::make_unique<nn::Embedding>(
      config_.vocab_size, config_.hidden_dim, rng, sql::kPaddingKey);
  if (config_.use_position_embedding) {
    position_embedding_ = std::make_unique<nn::Parameter>(
        nn::Tensor::Randn(config_.window, config_.hidden_dim, 0.1f, rng));
  }
  const int h = config_.hidden_dim;
  const int head_dim = h / config_.num_heads;
  blocks_.reserve(config_.num_blocks);
  for (int b = 0; b < config_.num_blocks; ++b) {
    Block block;
    block.heads.reserve(config_.num_heads);
    for (int m = 0; m < config_.num_heads; ++m) {
      block.heads.push_back(
          Head{nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng)),
               nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng)),
               nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng))});
    }
    block.wo = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.ln_attention = std::make_unique<nn::LayerNorm>(h);
    block.w1 = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.b1 = nn::Parameter(nn::Tensor::Zeros(1, h));
    block.w2 = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.b2 = nn::Parameter(nn::Tensor::Zeros(1, h));
    block.ln_ffn = std::make_unique<nn::LayerNorm>(h);
    blocks_.push_back(std::move(block));
  }
  mask_ = BuildMask();
}

nn::Tensor TransDasModel::BuildMask() const {
  const int L = config_.window;
  nn::Tensor mask(L, L);
  switch (config_.mask_mode) {
    case MaskMode::kNone:
      break;
    case MaskMode::kCausal:
      for (int i = 0; i < L; ++i) {
        for (int j = i + 1; j < L; ++j) mask.at(i, j) = kMaskValue;
      }
      break;
    case MaskMode::kBidirectionalSkipNext:
      // Disconnect Q_i from K_{i+1}: the output at position i must not see
      // the operation it predicts (input i+1); everything else stays
      // bidirectionally connected.
      for (int i = 0; i + 1 < L; ++i) mask.at(i, i + 1) = kMaskValue;
      break;
  }
  return mask;
}

nn::VarId TransDasModel::Forward(
    nn::Tape* tape, const std::vector<int>& window, bool training,
    util::Rng* dropout_rng, std::vector<nn::VarId>* first_block_attention) {
  UCAD_CHECK_EQ(static_cast<int>(window.size()), config_.window);
  nn::VarId x = embedding_->Forward(tape, window);
  if (position_embedding_ != nullptr) {
    x = tape->Add(x, tape->Param(position_embedding_.get()));
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.hidden_dim));
  const nn::VarId mask = tape->Constant(mask_);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    Block& block = blocks_[b];
    // Multi-head attention with masking.
    std::vector<nn::VarId> head_outputs;
    head_outputs.reserve(block.heads.size());
    for (Head& head : block.heads) {
      const nn::VarId q = tape->MatMul(x, tape->Param(&head.wq));
      const nn::VarId k = tape->MatMul(x, tape->Param(&head.wk));
      const nn::VarId v = tape->MatMul(x, tape->Param(&head.wv));
      nn::VarId scores =
          tape->Scale(tape->MatMul(q, tape->Transpose(k)), scale);
      scores = tape->Add(scores, mask);
      const nn::VarId attention = tape->SoftmaxRows(scores);
      if (b == 0 && first_block_attention != nullptr) {
        first_block_attention->push_back(attention);
      }
      head_outputs.push_back(tape->MatMul(attention, v));
    }
    nn::VarId mh =
        tape->MatMul(tape->ConcatCols(head_outputs), tape->Param(&block.wo));
    mh = tape->Dropout(mh, config_.dropout, training, dropout_rng);
    x = block.ln_attention->Forward(tape, tape->Add(x, mh));
    // Point-wise feed-forward (Eq. 7) with the same regularization.
    nn::VarId ff = tape->Relu(tape->AddRowVector(
        tape->MatMul(x, tape->Param(&block.w1)), tape->Param(&block.b1)));
    ff = tape->AddRowVector(tape->MatMul(ff, tape->Param(&block.w2)),
                            tape->Param(&block.b2));
    ff = tape->Dropout(ff, config_.dropout, training, dropout_rng);
    x = block.ln_ffn->Forward(tape, tape->Add(x, ff));
  }
  return x;
}

nn::VarId TransDasModel::AllKeyLogits(nn::Tape* tape, nn::VarId outputs) {
  return tape->MatMul(outputs, tape->Transpose(embedding_->Table(tape)));
}

std::vector<nn::Parameter*> TransDasModel::Params() {
  std::vector<nn::Parameter*> params = embedding_->Params();
  if (position_embedding_ != nullptr) {
    params.push_back(position_embedding_.get());
  }
  for (Block& block : blocks_) {
    for (Head& head : block.heads) {
      params.push_back(&head.wq);
      params.push_back(&head.wk);
      params.push_back(&head.wv);
    }
    params.push_back(&block.wo);
    for (nn::Parameter* p : block.ln_attention->Params()) params.push_back(p);
    params.push_back(&block.w1);
    params.push_back(&block.b1);
    params.push_back(&block.w2);
    params.push_back(&block.b2);
    for (nn::Parameter* p : block.ln_ffn->Params()) params.push_back(p);
  }
  return params;
}

}  // namespace ucad::transdas
