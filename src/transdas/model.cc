#include "transdas/model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "obs/flight.h"
#include "sql/vocabulary.h"
#include "util/logging.h"

namespace ucad::transdas {

namespace {
constexpr float kMaskValue = -1e9f;

/// Merges each window's owned final-block rows ([b*L + rows_from[b],
/// (b+1)*L) in the stacked row space) into maximal contiguous ranges, so
/// adjacent full windows run their row-wise tails as one kernel call.
std::vector<std::pair<int, int>> OwnedRowRanges(
    const std::vector<int>& rows_from, int L) {
  std::vector<std::pair<int, int>> ranges;
  ranges.reserve(rows_from.size());
  for (size_t b = 0; b < rows_from.size(); ++b) {
    const int start = static_cast<int>(b) * L + rows_from[b];
    const int end = (static_cast<int>(b) + 1) * L;
    if (!ranges.empty() && ranges.back().second == start) {
      ranges.back().second = end;
    } else {
      ranges.emplace_back(start, end);
    }
  }
  return ranges;
}
}  // namespace

TransDasModel::TransDasModel(const TransDasConfig& config, util::Rng* rng)
    : config_(config) {
  UCAD_CHECK_GT(config_.vocab_size, 1);
  UCAD_CHECK_GT(config_.window, 0);
  UCAD_CHECK_GT(config_.hidden_dim, 0);
  UCAD_CHECK_GT(config_.num_heads, 0);
  UCAD_CHECK_EQ(config_.hidden_dim % config_.num_heads, 0)
      << "num_heads must divide hidden_dim";
  UCAD_CHECK_GT(config_.num_blocks, 0);

  embedding_ = std::make_unique<nn::Embedding>(
      config_.vocab_size, config_.hidden_dim, rng, sql::kPaddingKey);
  if (config_.use_position_embedding) {
    position_embedding_ = std::make_unique<nn::Parameter>(
        nn::Tensor::Randn(config_.window, config_.hidden_dim, 0.1f, rng));
  }
  const int h = config_.hidden_dim;
  const int head_dim = h / config_.num_heads;
  blocks_.reserve(config_.num_blocks);
  for (int b = 0; b < config_.num_blocks; ++b) {
    Block block;
    block.heads.reserve(config_.num_heads);
    for (int m = 0; m < config_.num_heads; ++m) {
      block.heads.push_back(
          Head{nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng)),
               nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng)),
               nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng))});
    }
    block.wo = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.ln_attention = std::make_unique<nn::LayerNorm>(h);
    block.w1 = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.b1 = nn::Parameter(nn::Tensor::Zeros(1, h));
    block.w2 = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.b2 = nn::Parameter(nn::Tensor::Zeros(1, h));
    block.ln_ffn = std::make_unique<nn::LayerNorm>(h);
    blocks_.push_back(std::move(block));
  }
  mask_ = BuildMask();
}

nn::Tensor TransDasModel::BuildMask() const {
  const int L = config_.window;
  nn::Tensor mask(L, L);
  switch (config_.mask_mode) {
    case MaskMode::kNone:
      break;
    case MaskMode::kCausal:
      for (int i = 0; i < L; ++i) {
        for (int j = i + 1; j < L; ++j) mask.at(i, j) = kMaskValue;
      }
      break;
    case MaskMode::kBidirectionalSkipNext:
      // Disconnect Q_i from K_{i+1}: the output at position i must not see
      // the operation it predicts (input i+1); everything else stays
      // bidirectionally connected.
      for (int i = 0; i + 1 < L; ++i) mask.at(i, i + 1) = kMaskValue;
      break;
  }
  return mask;
}

nn::VarId TransDasModel::Forward(
    nn::Tape* tape, const std::vector<int>& window, bool training,
    util::Rng* dropout_rng, std::vector<nn::VarId>* first_block_attention) {
  UCAD_CHECK_EQ(static_cast<int>(window.size()), config_.window);
  nn::VarId x = embedding_->Forward(tape, window);
  if (position_embedding_ != nullptr) {
    x = tape->Add(x, tape->Param(position_embedding_.get()));
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.hidden_dim));
  const nn::VarId mask = tape->Constant(mask_);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    Block& block = blocks_[b];
    // Multi-head attention with masking.
    std::vector<nn::VarId> head_outputs;
    head_outputs.reserve(block.heads.size());
    for (Head& head : block.heads) {
      const nn::VarId q = tape->MatMul(x, tape->Param(&head.wq));
      const nn::VarId k = tape->MatMul(x, tape->Param(&head.wk));
      const nn::VarId v = tape->MatMul(x, tape->Param(&head.wv));
      nn::VarId scores =
          tape->Scale(tape->MatMul(q, tape->Transpose(k)), scale);
      scores = tape->Add(scores, mask);
      const nn::VarId attention = tape->SoftmaxRows(scores);
      if (b == 0 && first_block_attention != nullptr) {
        first_block_attention->push_back(attention);
      }
      head_outputs.push_back(tape->MatMul(attention, v));
    }
    nn::VarId mh =
        tape->MatMul(tape->ConcatCols(head_outputs), tape->Param(&block.wo));
    mh = tape->Dropout(mh, config_.dropout, training, dropout_rng);
    x = block.ln_attention->Forward(tape, tape->Add(x, mh));
    // Point-wise feed-forward (Eq. 7) with the same regularization.
    nn::VarId ff = tape->Relu(tape->AddRowVector(
        tape->MatMul(x, tape->Param(&block.w1)), tape->Param(&block.b1)));
    ff = tape->AddRowVector(tape->MatMul(ff, tape->Param(&block.w2)),
                            tape->Param(&block.b2));
    ff = tape->Dropout(ff, config_.dropout, training, dropout_rng);
    x = block.ln_ffn->Forward(tape, tape->Add(x, ff));
  }
  return x;
}

nn::VarId TransDasModel::AllKeyLogits(nn::Tape* tape, nn::VarId outputs) {
  return tape->MatMul(outputs, tape->Transpose(embedding_->Table(tape)));
}

const nn::Tensor& TransDasModel::PackedQkv(nn::InferenceContext* ctx,
                                           size_t block_index, uint64_t wv,
                                           int packed_cols) {
  // All heads' Q|K|V projections as one packed [h x 3h] matrix: one wide
  // matmul instead of 3m narrow ones. Column j of the packed matrix is a
  // column of some head's weight, so each output element's accumulation
  // chain is exactly the per-head MatMul's. The column count is rounded
  // up to a vector-friendly multiple of 8 with zero columns — the pad
  // outputs are never read, and real columns are untouched by them.
  Block& block = blocks_[block_index];
  return ctx->CachedWeight(
      &block, wv, config_.hidden_dim, packed_cols,
      [this, &block](nn::Tensor* out) {
        out->SetZero();
        const int hd = config_.hidden_dim / config_.num_heads;
        for (size_t hi = 0; hi < block.heads.size(); ++hi) {
          const Head& head = block.heads[hi];
          for (int r = 0; r < out->rows(); ++r) {
            float* orow = out->row(r);
            const int off = static_cast<int>(hi) * hd;
            std::memcpy(orow + off, head.wq.value().row(r),
                        static_cast<size_t>(hd) * sizeof(float));
            std::memcpy(orow + config_.hidden_dim + off,
                        head.wk.value().row(r),
                        static_cast<size_t>(hd) * sizeof(float));
            std::memcpy(orow + 2 * config_.hidden_dim + off,
                        head.wv.value().row(r),
                        static_cast<size_t>(hd) * sizeof(float));
          }
        }
      });
}

const nn::QuantizedWeight& TransDasModel::QuantizedPackedQkv(
    nn::InferenceContext* ctx, size_t block_index, uint64_t wv,
    int packed_cols) {
  const nn::Tensor& packed = PackedQkv(ctx, block_index, wv, packed_cols);
  return ctx->CachedQuantWeight(&blocks_[block_index], wv, packed,
                                /*transpose=*/true);
}

const nn::Tensor& TransDasModel::ForwardInference(
    nn::InferenceContext* ctx, const std::vector<int>& window, int rows_from,
    bool slide) {
  UCAD_CHECK_EQ(static_cast<int>(window.size()), config_.window);
  nn::Workspace& ws = ctx->workspace();
  ws.BeginFrame();
  const int L = config_.window;
  const int h = config_.hidden_dim;
  const int m = config_.num_heads;
  const int head_dim = h / m;
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  UCAD_DCHECK(rows_from >= 0 && rows_from < L);
  // One forward pins one weight version: every derived-weight lookup below
  // resolves against this snapshot, so a MarkWeightsUpdated landing between
  // a batch's pack and flush can never mix projection versions within the
  // pass — the bump takes effect on the next forward.
  const uint64_t wv = weight_version_;
  // Like the weight version, the kernel tier is pinned once per forward:
  // the fused kernels re-read the thread-local themselves, but the int8
  // GEMM routing below must agree with the tier the slide cache's rows
  // were produced under within this pass.
  const nn::KernelTier tier = nn::CurrentKernelTier();
  const int packed_cols = (3 * h + 7) / 8 * 8;

  // The x slot is acquired in slide mode too (untouched), so pooled
  // contexts alternating between sliding and from-scratch frames keep the
  // identical slot-shape sequence and never churn the arena.
  nn::Tensor* x = ws.Acquire(L, h);
  const nn::Tensor* xin = x;
  const nn::Tensor* qkv0_cached = nullptr;
  if (slide && SupportsSlideCache()) {
    ctx->EnsureSlideCacheShapes(L, h, packed_cols);
    nn::InferenceContext::WindowSlideCache& sc = ctx->slide_cache();
    const bool keyed = sc.valid && sc.model == this && sc.version == wv;
    // First row whose embedding/projection must be recomputed: L = exact
    // revisit (reuse everything), L-1 = one-position slide, 0 = miss.
    int recompute_from = 0;
    if (keyed && sc.keys == window) {
      recompute_from = L;
    } else if (keyed && std::equal(sc.keys.begin() + 1, sc.keys.end(),
                                   window.begin())) {
      // Rows 0..L-2 are the previous window's rows 1..L-1: both cached
      // tensors are pure per-key row functions, so a row move is exact.
      std::memmove(sc.embed.row(0), sc.embed.row(1),
                   static_cast<size_t>(L - 1) * h * sizeof(float));
      std::memmove(sc.qkv0.row(0), sc.qkv0.row(1),
                   static_cast<size_t>(L - 1) * packed_cols * sizeof(float));
      recompute_from = L - 1;
    }
    ctx->NoteSlideCache(recompute_from >= L - 1);
    if (recompute_from < L) {
      int row0 = 0;
      if (recompute_from == 0) {
        nn::GatherRowsKernel(embedding_->table().value(), window, &sc.embed);
      } else {
        // Only the newly arrived position: a one-row gather (the same
        // memcpy GatherRowsKernel performs) + a one-row projection.
        UCAD_DCHECK(window[L - 1] >= 0 &&
                    window[L - 1] < embedding_->table().value().rows());
        std::memcpy(sc.embed.row(L - 1),
                    embedding_->table().value().row(window[L - 1]),
                    static_cast<size_t>(h) * sizeof(float));
        row0 = L - 1;
      }
      if (tier == nn::KernelTier::kInt8) {
        // Output row r of the int8 GEMM depends only on activation row r
        // (per-row activation quantization), so the one-row recompute is
        // bitwise-consistent with a full fill — the slide cache's
        // exactness argument carries over within the tier.
        nn::Int8GemmKernel(sc.embed, 0, h,
                           QuantizedPackedQkv(ctx, 0, wv, packed_cols), row0,
                           &sc.qkv0);
      } else {
        nn::MatMulSliceKernel(sc.embed, 0, h,
                              PackedQkv(ctx, 0, wv, packed_cols), row0,
                              &sc.qkv0);
      }
      sc.keys = window;
      sc.model = this;
      sc.version = wv;
      sc.valid = true;
    }
    xin = &sc.embed;
    qkv0_cached = &sc.qkv0;
  } else {
    nn::GatherRowsKernel(embedding_->table().value(), window, x);
    if (position_embedding_ != nullptr) {
      x->AddInPlace(position_embedding_->value());
    }
  }
  obs::FlightStageBoundary(obs::FlightStage::kEmbed);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    Block& block = blocks_[b];
    // Attention output rows feed later blocks through every position, so
    // only the final block may restrict its query rows; its keys/values
    // (and every earlier block) still cover the whole window.
    const int r0 = b + 1 == blocks_.size() ? rows_from : 0;
    const nn::Tensor& packed = PackedQkv(ctx, b, wv, packed_cols);
    if (on_block_weights_for_test_) {
      on_block_weights_for_test_(static_cast<int>(b), wv);
    }
    nn::Tensor* qkv = ws.Acquire(L, packed_cols);
    const nn::Tensor* qkv_in = qkv;
    if (b == 0 && qkv0_cached != nullptr) {
      // Block-0 projections came from the slide cache; the slot stays
      // acquired (sequence stability) but untouched.
      qkv_in = qkv0_cached;
    } else if (tier == nn::KernelTier::kInt8) {
      nn::Int8GemmKernel(*xin, 0, h,
                         QuantizedPackedQkv(ctx, b, wv, packed_cols), 0, qkv);
    } else {
      nn::MatMulSliceKernel(*xin, 0, h, packed, 0, qkv);
    }
    // Multi-head attention with masking, one fused softmax per head; each
    // head's context lands directly in its concat column block.
    nn::Tensor* concat = ws.Acquire(L, h);
    for (int hi = 0; hi < m; ++hi) {
      const int qoff = hi * head_dim;
      const int koff = h + hi * head_dim;
      const int voff = 2 * h + hi * head_dim;
      nn::Tensor* kt = ws.Acquire(head_dim, L);
      nn::TransposeSliceKernel(*qkv_in, koff, head_dim, kt);
      nn::Tensor* scores = ws.Acquire(L, L);
      // Scale folded into the matmul's epilogue pass; the softmax then sees
      // pre-scaled scores (scale = 1 skips its identity pass).
      nn::MatMulSliceKernel(*qkv_in, qoff, head_dim, *kt, r0, scores, scale);
      nn::MaskedSoftmaxKernel(scores, 1.0f, mask_, r0);
      if (b + 1 == blocks_.size() && ctx->attention_capture_row() >= 0) {
        // Attribution hook: hand the armed output row's post-softmax
        // attention weights to the context. A read of already-stored
        // values, so capture cannot perturb the computed logits.
        const int cap = ctx->attention_capture_row();
        UCAD_DCHECK(cap >= r0 && cap < L);
        ctx->RecordAttentionRow(static_cast<size_t>(hi), scores->row(cap), L);
      }
      nn::AttnContextKernel(*scores, r0, *qkv_in, voff, head_dim, qoff,
                            concat);
    }
    nn::Tensor* mh = ws.Acquire(L, h);
    nn::MatMulSliceKernel(*concat, 0, h, block.wo.value(), r0, mh);
    // Dropout is identity outside training; fold the residual into the norm.
    nn::Tensor* ln1 = ws.Acquire(L, h);
    nn::ResidualLayerNormKernel(*xin, *mh, block.ln_attention->gain().value(),
                                block.ln_attention->bias().value(), 1e-5f, ln1,
                                r0);
    xin = ln1;
    obs::FlightStageBoundary(obs::FlightStage::kAttention);
    // Point-wise feed-forward (Eq. 7): bias+relu and bias fused in place.
    nn::Tensor* ff = ws.Acquire(L, h);
    nn::MatMulSliceKernel(*xin, 0, h, block.w1.value(), r0, ff);
    nn::BiasReluKernel(ff, block.b1.value(), r0);
    nn::Tensor* ff2 = ws.Acquire(L, h);
    nn::MatMulSliceKernel(*ff, 0, h, block.w2.value(), r0, ff2);
    nn::BiasAddKernel(ff2, block.b2.value(), r0);
    nn::Tensor* ln2 = ws.Acquire(L, h);
    nn::ResidualLayerNormKernel(*xin, *ff2, block.ln_ffn->gain().value(),
                                block.ln_ffn->bias().value(), 1e-5f, ln2, r0);
    xin = ln2;
    obs::FlightStageBoundary(obs::FlightStage::kFfn);
  }
  ctx->NoteForward(tier);
  return *xin;
}

const nn::Tensor& TransDasModel::ForwardInferenceBatched(
    nn::InferenceContext* ctx, const std::vector<int>& keys,
    const std::vector<int>& rows_from, int capacity) {
  const int L = config_.window;
  const int h = config_.hidden_dim;
  const int m = config_.num_heads;
  const int head_dim = h / m;
  const int B = static_cast<int>(rows_from.size());
  UCAD_CHECK_GT(B, 0);
  UCAD_CHECK_GE(capacity, B);
  UCAD_CHECK_EQ(static_cast<int>(keys.size()), B * L);
  // The capture hook is a single-window contract; batched scoring never
  // arms it (attribution re-derives verdicts through ForwardInference).
  UCAD_DCHECK(ctx->attention_capture_row() < 0);
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  const uint64_t wv = weight_version_;
  const nn::KernelTier tier = nn::CurrentKernelTier();
  const int packed_cols = (3 * h + 7) / 8 * 8;
  const int total = B * L;
  const int cap_rows = capacity * L;
  // The dedicated batch arena: batched frames acquire capacity-sized slots,
  // which must not evict the single-window arena of a pooled context.
  nn::Workspace& ws = ctx->batch_workspace();
  ws.BeginFrame();

  nn::Tensor* x = ws.Acquire(cap_rows, h);
  nn::GatherRowsKernel(embedding_->table().value(), keys, x);
  if (position_embedding_ != nullptr) {
    // Window-local broadcast of the learnable position rows — the same
    // elementwise adds AddInPlace performs on the single-window path.
    const nn::Tensor& pe = position_embedding_->value();
    for (int b = 0; b < B; ++b) {
      for (int i = 0; i < L; ++i) {
        float* xr = x->row(b * L + i);
        const float* pr = pe.row(i);
        for (int c = 0; c < h; ++c) xr[c] += pr[c];
      }
    }
  }
  obs::FlightStageBoundary(obs::FlightStage::kEmbed);

  // Row-wise tails of the final block only touch each window's owned rows;
  // earlier blocks compute every occupied row as one range.
  const std::vector<std::pair<int, int>> owned = OwnedRowRanges(rows_from, L);
  const std::vector<std::pair<int, int>> full{{0, total}};

  const nn::Tensor* xin = x;
  for (size_t b = 0; b < blocks_.size(); ++b) {
    Block& block = blocks_[b];
    const bool final_block = b + 1 == blocks_.size();
    const std::vector<std::pair<int, int>>& rs = final_block ? owned : full;
    const nn::Tensor& packed = PackedQkv(ctx, b, wv, packed_cols);
    if (on_block_weights_for_test_) {
      on_block_weights_for_test_(static_cast<int>(b), wv);
    }
    // One wide [B*L x h] GEMM per block instead of B skinny ones — the
    // arithmetic-intensity win the batcher exists for. Keys/values must
    // cover every row of every window, so no rows_from restriction here.
    nn::Tensor* qkv = ws.Acquire(cap_rows, packed_cols);
    if (tier == nn::KernelTier::kInt8) {
      nn::Int8GemmKernel(*xin, 0, h,
                         QuantizedPackedQkv(ctx, b, wv, packed_cols), 0, qkv,
                         1.0f, total);
    } else {
      nn::MatMulSliceKernel(*xin, 0, h, packed, 0, qkv, 1.0f, total);
    }
    nn::Tensor* concat = ws.Acquire(cap_rows, h);
    for (int hi = 0; hi < m; ++hi) {
      const int qoff = hi * head_dim;
      const int koff = h + hi * head_dim;
      const int voff = 2 * h + hi * head_dim;
      nn::Tensor* kt = ws.Acquire(capacity * head_dim, L);
      nn::BatchedTransposeSliceKernel(*qkv, B, L, koff, head_dim, kt);
      nn::Tensor* scores = ws.Acquire(cap_rows, L);
      nn::BatchedAttentionHeadKernel(
          *qkv, B, L, final_block ? rows_from.data() : nullptr, qoff, head_dim,
          *kt, scale, mask_, voff, qoff, scores, concat);
    }
    nn::Tensor* mh = ws.Acquire(cap_rows, h);
    for (const auto& [start, end] : rs) {
      nn::MatMulSliceKernel(*concat, 0, h, block.wo.value(), start, mh, 1.0f,
                            end);
    }
    nn::Tensor* ln1 = ws.Acquire(cap_rows, h);
    for (const auto& [start, end] : rs) {
      nn::ResidualLayerNormKernel(*xin, *mh, block.ln_attention->gain().value(),
                                  block.ln_attention->bias().value(), 1e-5f,
                                  ln1, start, end);
    }
    xin = ln1;
    obs::FlightStageBoundary(obs::FlightStage::kAttention);
    nn::Tensor* ff = ws.Acquire(cap_rows, h);
    for (const auto& [start, end] : rs) {
      nn::MatMulSliceKernel(*xin, 0, h, block.w1.value(), start, ff, 1.0f,
                            end);
      nn::BiasReluKernel(ff, block.b1.value(), start, end);
    }
    nn::Tensor* ff2 = ws.Acquire(cap_rows, h);
    for (const auto& [start, end] : rs) {
      nn::MatMulSliceKernel(*ff, 0, h, block.w2.value(), start, ff2, 1.0f,
                            end);
      nn::BiasAddKernel(ff2, block.b2.value(), start, end);
    }
    nn::Tensor* ln2 = ws.Acquire(cap_rows, h);
    for (const auto& [start, end] : rs) {
      nn::ResidualLayerNormKernel(*xin, *ff2, block.ln_ffn->gain().value(),
                                  block.ln_ffn->bias().value(), 1e-5f, ln2,
                                  start, end);
    }
    xin = ln2;
    obs::FlightStageBoundary(obs::FlightStage::kFfn);
  }
  ctx->NoteForward(tier);
  ctx->NoteBatchForward(B, capacity);
  return *xin;
}

const nn::Tensor& TransDasModel::AllKeyLogitsInference(
    nn::InferenceContext* ctx, const nn::Tensor& outputs, int rows_from) {
  const nn::Tensor& table = embedding_->table().value();
  if (nn::CurrentKernelTier() == nn::KernelTier::kInt8) {
    // The embedding table is already [vocab x h] — exactly the row-major
    // B^T layout Int8GemmKernel wants — so the int8 tier quantizes it
    // directly and never materializes the float transpose.
    const nn::QuantizedWeight& qt = ctx->CachedQuantWeight(
        &table, weight_version_, table, /*transpose=*/false);
    nn::Tensor* logits = ctx->workspace().Acquire(outputs.rows(), table.rows());
    nn::Int8GemmKernel(outputs, 0, outputs.cols(), qt, rows_from, logits);
    obs::FlightStageBoundary(obs::FlightStage::kLogits);
    return *logits;
  }
  // Materialized M^T + the same per-element recipe the tape path's
  // nn::MatMul runs: the tape's MatMulTransposeBAccum shortcut accumulates
  // in double, so going through it here would break bitwise parity. The
  // transpose itself is a pure copy and is cached across windows on the
  // context.
  const nn::Tensor& table_t = ctx->TransposedCopy(table, weight_version_);
  nn::Tensor* logits = ctx->workspace().Acquire(outputs.rows(), table_t.cols());
  nn::MatMulSliceKernel(outputs, 0, outputs.cols(), table_t, rows_from, logits);
  obs::FlightStageBoundary(obs::FlightStage::kLogits);
  return *logits;
}

const nn::Tensor& TransDasModel::AllKeyLogitsInferenceBatched(
    nn::InferenceContext* ctx, const nn::Tensor& outputs,
    const std::vector<int>& rows_from, int capacity) {
  const int L = config_.window;
  UCAD_DCHECK(outputs.rows() == capacity * L);
  const nn::Tensor& table = embedding_->table().value();
  if (nn::CurrentKernelTier() == nn::KernelTier::kInt8) {
    const nn::QuantizedWeight& qt = ctx->CachedQuantWeight(
        &table, weight_version_, table, /*transpose=*/false);
    nn::Tensor* logits =
        ctx->batch_workspace().Acquire(outputs.rows(), table.rows());
    for (const auto& [start, end] : OwnedRowRanges(rows_from, L)) {
      nn::Int8GemmKernel(outputs, 0, outputs.cols(), qt, start, logits, 1.0f,
                         end);
    }
    obs::FlightStageBoundary(obs::FlightStage::kLogits);
    return *logits;
  }
  const nn::Tensor& table_t = ctx->TransposedCopy(table, weight_version_);
  nn::Tensor* logits =
      ctx->batch_workspace().Acquire(outputs.rows(), table_t.cols());
  for (const auto& [start, end] : OwnedRowRanges(rows_from, L)) {
    nn::MatMulSliceKernel(outputs, 0, outputs.cols(), table_t, start, logits,
                          1.0f, end);
  }
  obs::FlightStageBoundary(obs::FlightStage::kLogits);
  return *logits;
}

std::vector<nn::Parameter*> TransDasModel::Params() {
  std::vector<nn::Parameter*> params = embedding_->Params();
  if (position_embedding_ != nullptr) {
    params.push_back(position_embedding_.get());
  }
  for (Block& block : blocks_) {
    for (Head& head : block.heads) {
      params.push_back(&head.wq);
      params.push_back(&head.wk);
      params.push_back(&head.wv);
    }
    params.push_back(&block.wo);
    for (nn::Parameter* p : block.ln_attention->Params()) params.push_back(p);
    params.push_back(&block.w1);
    params.push_back(&block.b1);
    params.push_back(&block.w2);
    params.push_back(&block.b2);
    for (nn::Parameter* p : block.ln_ffn->Params()) params.push_back(p);
  }
  return params;
}

}  // namespace ucad::transdas
