#include "transdas/model.h"

#include <cmath>
#include <cstring>

#include "obs/flight.h"
#include "sql/vocabulary.h"
#include "util/logging.h"

namespace ucad::transdas {

namespace {
constexpr float kMaskValue = -1e9f;
}  // namespace

TransDasModel::TransDasModel(const TransDasConfig& config, util::Rng* rng)
    : config_(config) {
  UCAD_CHECK_GT(config_.vocab_size, 1);
  UCAD_CHECK_GT(config_.window, 0);
  UCAD_CHECK_GT(config_.hidden_dim, 0);
  UCAD_CHECK_GT(config_.num_heads, 0);
  UCAD_CHECK_EQ(config_.hidden_dim % config_.num_heads, 0)
      << "num_heads must divide hidden_dim";
  UCAD_CHECK_GT(config_.num_blocks, 0);

  embedding_ = std::make_unique<nn::Embedding>(
      config_.vocab_size, config_.hidden_dim, rng, sql::kPaddingKey);
  if (config_.use_position_embedding) {
    position_embedding_ = std::make_unique<nn::Parameter>(
        nn::Tensor::Randn(config_.window, config_.hidden_dim, 0.1f, rng));
  }
  const int h = config_.hidden_dim;
  const int head_dim = h / config_.num_heads;
  blocks_.reserve(config_.num_blocks);
  for (int b = 0; b < config_.num_blocks; ++b) {
    Block block;
    block.heads.reserve(config_.num_heads);
    for (int m = 0; m < config_.num_heads; ++m) {
      block.heads.push_back(
          Head{nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng)),
               nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng)),
               nn::Parameter(nn::Tensor::XavierUniform(h, head_dim, rng))});
    }
    block.wo = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.ln_attention = std::make_unique<nn::LayerNorm>(h);
    block.w1 = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.b1 = nn::Parameter(nn::Tensor::Zeros(1, h));
    block.w2 = nn::Parameter(nn::Tensor::XavierUniform(h, h, rng));
    block.b2 = nn::Parameter(nn::Tensor::Zeros(1, h));
    block.ln_ffn = std::make_unique<nn::LayerNorm>(h);
    blocks_.push_back(std::move(block));
  }
  mask_ = BuildMask();
}

nn::Tensor TransDasModel::BuildMask() const {
  const int L = config_.window;
  nn::Tensor mask(L, L);
  switch (config_.mask_mode) {
    case MaskMode::kNone:
      break;
    case MaskMode::kCausal:
      for (int i = 0; i < L; ++i) {
        for (int j = i + 1; j < L; ++j) mask.at(i, j) = kMaskValue;
      }
      break;
    case MaskMode::kBidirectionalSkipNext:
      // Disconnect Q_i from K_{i+1}: the output at position i must not see
      // the operation it predicts (input i+1); everything else stays
      // bidirectionally connected.
      for (int i = 0; i + 1 < L; ++i) mask.at(i, i + 1) = kMaskValue;
      break;
  }
  return mask;
}

nn::VarId TransDasModel::Forward(
    nn::Tape* tape, const std::vector<int>& window, bool training,
    util::Rng* dropout_rng, std::vector<nn::VarId>* first_block_attention) {
  UCAD_CHECK_EQ(static_cast<int>(window.size()), config_.window);
  nn::VarId x = embedding_->Forward(tape, window);
  if (position_embedding_ != nullptr) {
    x = tape->Add(x, tape->Param(position_embedding_.get()));
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.hidden_dim));
  const nn::VarId mask = tape->Constant(mask_);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    Block& block = blocks_[b];
    // Multi-head attention with masking.
    std::vector<nn::VarId> head_outputs;
    head_outputs.reserve(block.heads.size());
    for (Head& head : block.heads) {
      const nn::VarId q = tape->MatMul(x, tape->Param(&head.wq));
      const nn::VarId k = tape->MatMul(x, tape->Param(&head.wk));
      const nn::VarId v = tape->MatMul(x, tape->Param(&head.wv));
      nn::VarId scores =
          tape->Scale(tape->MatMul(q, tape->Transpose(k)), scale);
      scores = tape->Add(scores, mask);
      const nn::VarId attention = tape->SoftmaxRows(scores);
      if (b == 0 && first_block_attention != nullptr) {
        first_block_attention->push_back(attention);
      }
      head_outputs.push_back(tape->MatMul(attention, v));
    }
    nn::VarId mh =
        tape->MatMul(tape->ConcatCols(head_outputs), tape->Param(&block.wo));
    mh = tape->Dropout(mh, config_.dropout, training, dropout_rng);
    x = block.ln_attention->Forward(tape, tape->Add(x, mh));
    // Point-wise feed-forward (Eq. 7) with the same regularization.
    nn::VarId ff = tape->Relu(tape->AddRowVector(
        tape->MatMul(x, tape->Param(&block.w1)), tape->Param(&block.b1)));
    ff = tape->AddRowVector(tape->MatMul(ff, tape->Param(&block.w2)),
                            tape->Param(&block.b2));
    ff = tape->Dropout(ff, config_.dropout, training, dropout_rng);
    x = block.ln_ffn->Forward(tape, tape->Add(x, ff));
  }
  return x;
}

nn::VarId TransDasModel::AllKeyLogits(nn::Tape* tape, nn::VarId outputs) {
  return tape->MatMul(outputs, tape->Transpose(embedding_->Table(tape)));
}

const nn::Tensor& TransDasModel::ForwardInference(
    nn::InferenceContext* ctx, const std::vector<int>& window, int rows_from) {
  UCAD_CHECK_EQ(static_cast<int>(window.size()), config_.window);
  nn::Workspace& ws = ctx->workspace();
  ws.BeginFrame();
  const int L = config_.window;
  const int h = config_.hidden_dim;
  const int m = config_.num_heads;
  const int head_dim = h / m;
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  UCAD_DCHECK(rows_from >= 0 && rows_from < L);

  nn::Tensor* x = ws.Acquire(L, h);
  nn::GatherRowsKernel(embedding_->table().value(), window, x);
  if (position_embedding_ != nullptr) {
    x->AddInPlace(position_embedding_->value());
  }
  obs::FlightStageBoundary(obs::FlightStage::kEmbed);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    Block& block = blocks_[b];
    // Attention output rows feed later blocks through every position, so
    // only the final block may restrict its query rows; its keys/values
    // (and every earlier block) still cover the whole window.
    const int r0 = b + 1 == blocks_.size() ? rows_from : 0;
    // All heads' Q|K|V projections as one packed [h x 3h] matrix: one wide
    // matmul instead of 3m narrow ones. Column j of the packed matrix is a
    // column of some head's weight, so each output element's accumulation
    // chain is exactly the per-head MatMul's. The column count is rounded
    // up to a vector-friendly multiple of 8 with zero columns — the pad
    // outputs are never read, and real columns are untouched by them.
    const int packed_cols = (3 * h + 7) / 8 * 8;
    const nn::Tensor& packed = ctx->CachedWeight(
        &block, weight_version_, h, packed_cols,
        [this, &block](nn::Tensor* out) {
          out->SetZero();
          const int hd = config_.hidden_dim / config_.num_heads;
          for (size_t hi = 0; hi < block.heads.size(); ++hi) {
            const Head& head = block.heads[hi];
            for (int r = 0; r < out->rows(); ++r) {
              float* orow = out->row(r);
              const int off = static_cast<int>(hi) * hd;
              std::memcpy(orow + off, head.wq.value().row(r),
                          static_cast<size_t>(hd) * sizeof(float));
              std::memcpy(orow + config_.hidden_dim + off,
                          head.wk.value().row(r),
                          static_cast<size_t>(hd) * sizeof(float));
              std::memcpy(orow + 2 * config_.hidden_dim + off,
                          head.wv.value().row(r),
                          static_cast<size_t>(hd) * sizeof(float));
            }
          }
        });
    nn::Tensor* qkv = ws.Acquire(L, packed_cols);
    nn::MatMulSliceKernel(*x, 0, h, packed, 0, qkv);
    // Multi-head attention with masking, one fused softmax per head; each
    // head's context lands directly in its concat column block.
    nn::Tensor* concat = ws.Acquire(L, h);
    for (int hi = 0; hi < m; ++hi) {
      const int qoff = hi * head_dim;
      const int koff = h + hi * head_dim;
      const int voff = 2 * h + hi * head_dim;
      nn::Tensor* kt = ws.Acquire(head_dim, L);
      nn::TransposeSliceKernel(*qkv, koff, head_dim, kt);
      nn::Tensor* scores = ws.Acquire(L, L);
      // Scale folded into the matmul's epilogue pass; the softmax then sees
      // pre-scaled scores (scale = 1 skips its identity pass).
      nn::MatMulSliceKernel(*qkv, qoff, head_dim, *kt, r0, scores, scale);
      nn::MaskedSoftmaxKernel(scores, 1.0f, mask_, r0);
      if (b + 1 == blocks_.size() && ctx->attention_capture_row() >= 0) {
        // Attribution hook: hand the armed output row's post-softmax
        // attention weights to the context. A read of already-stored
        // values, so capture cannot perturb the computed logits.
        const int cap = ctx->attention_capture_row();
        UCAD_DCHECK(cap >= r0 && cap < L);
        ctx->RecordAttentionRow(static_cast<size_t>(hi), scores->row(cap), L);
      }
      nn::AttnContextKernel(*scores, r0, *qkv, voff, head_dim, qoff, concat);
    }
    nn::Tensor* mh = ws.Acquire(L, h);
    nn::MatMulSliceKernel(*concat, 0, h, block.wo.value(), r0, mh);
    // Dropout is identity outside training; fold the residual into the norm.
    nn::Tensor* ln1 = ws.Acquire(L, h);
    nn::ResidualLayerNormKernel(*x, *mh, block.ln_attention->gain().value(),
                                block.ln_attention->bias().value(), 1e-5f, ln1,
                                r0);
    x = ln1;
    obs::FlightStageBoundary(obs::FlightStage::kAttention);
    // Point-wise feed-forward (Eq. 7): bias+relu and bias fused in place.
    nn::Tensor* ff = ws.Acquire(L, h);
    nn::MatMulSliceKernel(*x, 0, h, block.w1.value(), r0, ff);
    nn::BiasReluKernel(ff, block.b1.value(), r0);
    nn::Tensor* ff2 = ws.Acquire(L, h);
    nn::MatMulSliceKernel(*ff, 0, h, block.w2.value(), r0, ff2);
    nn::BiasAddKernel(ff2, block.b2.value(), r0);
    nn::Tensor* ln2 = ws.Acquire(L, h);
    nn::ResidualLayerNormKernel(*x, *ff2, block.ln_ffn->gain().value(),
                                block.ln_ffn->bias().value(), 1e-5f, ln2, r0);
    x = ln2;
    obs::FlightStageBoundary(obs::FlightStage::kFfn);
  }
  ctx->NoteForward();
  return *x;
}

const nn::Tensor& TransDasModel::AllKeyLogitsInference(
    nn::InferenceContext* ctx, const nn::Tensor& outputs, int rows_from) {
  // Materialized M^T + the same per-element recipe the tape path's
  // nn::MatMul runs: the tape's MatMulTransposeBAccum shortcut accumulates
  // in double, so going through it here would break bitwise parity. The
  // transpose itself is a pure copy and is cached across windows on the
  // context.
  const nn::Tensor& table_t = ctx->TransposedCopy(
      embedding_->table().value(), weight_version_);
  nn::Tensor* logits = ctx->workspace().Acquire(outputs.rows(), table_t.cols());
  nn::MatMulSliceKernel(outputs, 0, outputs.cols(), table_t, rows_from, logits);
  obs::FlightStageBoundary(obs::FlightStage::kLogits);
  return *logits;
}

std::vector<nn::Parameter*> TransDasModel::Params() {
  std::vector<nn::Parameter*> params = embedding_->Params();
  if (position_embedding_ != nullptr) {
    params.push_back(position_embedding_.get());
  }
  for (Block& block : blocks_) {
    for (Head& head : block.heads) {
      params.push_back(&head.wq);
      params.push_back(&head.wk);
      params.push_back(&head.wv);
    }
    params.push_back(&block.wo);
    for (nn::Parameter* p : block.ln_attention->Params()) params.push_back(p);
    params.push_back(&block.w1);
    params.push_back(&block.b1);
    params.push_back(&block.w2);
    params.push_back(&block.b2);
    for (nn::Parameter* p : block.ln_ffn->Params()) params.push_back(p);
  }
  return params;
}

}  // namespace ucad::transdas
