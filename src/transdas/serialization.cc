#include "transdas/serialization.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "util/binary_io.h"
#include "util/logging.h"

namespace ucad::transdas {

namespace {

constexpr uint32_t kMagic = 0x55434144;  // "UCAD"
constexpr uint32_t kVersion = 1;

util::Status WriteVocabulary(const sql::Vocabulary& vocab,
                             std::ostream& os) {
  util::WriteU32(os, static_cast<uint32_t>(vocab.size()));
  // Key 0 is implicit (<pad>); serialize keys 1..size-1.
  for (int key = 1; key < vocab.size(); ++key) {
    util::WriteString(os, vocab.TemplateOf(key));
    util::WriteI32(os, static_cast<int32_t>(vocab.CommandOf(key)));
    util::WriteString(os, vocab.TableOf(key));
  }
  return util::Status::Ok();
}

util::Status ReadVocabulary(std::istream& is, sql::Vocabulary* vocab) {
  uint32_t size = 0;
  UCAD_RETURN_IF_ERROR(util::ReadU32(is, &size));
  if (size == 0 || size > (1u << 24)) {
    return util::Status::InvalidArgument("implausible vocabulary size");
  }
  for (uint32_t key = 1; key < size; ++key) {
    std::string template_text, table;
    int32_t command = 0;
    UCAD_RETURN_IF_ERROR(util::ReadString(is, &template_text));
    UCAD_RETURN_IF_ERROR(util::ReadI32(is, &command));
    UCAD_RETURN_IF_ERROR(util::ReadString(is, &table));
    if (command < 0 ||
        command > static_cast<int32_t>(sql::CommandType::kOther)) {
      return util::Status::InvalidArgument("bad command type");
    }
    vocab->AppendEntry(std::move(template_text),
                       static_cast<sql::CommandType>(command),
                       std::move(table));
  }
  vocab->Freeze();
  return util::Status::Ok();
}

}  // namespace

util::Status SaveModel(TransDasModel* model, const sql::Vocabulary& vocab,
                       std::ostream& os) {
  const TransDasConfig& config = model->config();
  if (config.vocab_size != vocab.size()) {
    return util::Status::InvalidArgument(
        "model vocab_size does not match the vocabulary");
  }
  util::WriteU32(os, kMagic);
  util::WriteU32(os, kVersion);
  util::WriteI32(os, config.vocab_size);
  util::WriteI32(os, config.window);
  util::WriteI32(os, config.hidden_dim);
  util::WriteI32(os, config.num_heads);
  util::WriteI32(os, config.num_blocks);
  util::WriteF32(os, config.dropout);
  util::WriteI32(os, config.use_position_embedding ? 1 : 0);
  util::WriteI32(os, static_cast<int32_t>(config.mask_mode));

  const std::vector<nn::Parameter*> params = model->Params();
  util::WriteU32(os, static_cast<uint32_t>(params.size()));
  for (nn::Parameter* p : params) {
    util::WriteI32(os, p->value().rows());
    util::WriteI32(os, p->value().cols());
    std::vector<float> data(p->value().data(),
                            p->value().data() + p->value().size());
    util::WriteFloatVector(os, data);
  }
  UCAD_RETURN_IF_ERROR(WriteVocabulary(vocab, os));
  if (!os.good()) return util::Status::Internal("stream write failed");
  return util::Status::Ok();
}

util::Status SaveModelToFile(TransDasModel* model,
                             const sql::Vocabulary& vocab,
                             const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os.is_open()) {
    return util::Status::NotFound("cannot open " + path + " for writing");
  }
  return SaveModel(model, vocab, os);
}

util::Result<ModelBundle> LoadModel(std::istream& is) {
  uint32_t magic = 0, version = 0;
  UCAD_RETURN_IF_ERROR(util::ReadU32(is, &magic));
  if (magic != kMagic) {
    return util::Status::InvalidArgument("not a UCAD model file");
  }
  UCAD_RETURN_IF_ERROR(util::ReadU32(is, &version));
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported model version " +
                                         std::to_string(version));
  }
  TransDasConfig config;
  int32_t position_flag = 0, mask_mode = 0;
  UCAD_RETURN_IF_ERROR(util::ReadI32(is, &config.vocab_size));
  UCAD_RETURN_IF_ERROR(util::ReadI32(is, &config.window));
  UCAD_RETURN_IF_ERROR(util::ReadI32(is, &config.hidden_dim));
  UCAD_RETURN_IF_ERROR(util::ReadI32(is, &config.num_heads));
  UCAD_RETURN_IF_ERROR(util::ReadI32(is, &config.num_blocks));
  UCAD_RETURN_IF_ERROR(util::ReadF32(is, &config.dropout));
  UCAD_RETURN_IF_ERROR(util::ReadI32(is, &position_flag));
  UCAD_RETURN_IF_ERROR(util::ReadI32(is, &mask_mode));
  config.use_position_embedding = position_flag != 0;
  if (mask_mode < 0 ||
      mask_mode > static_cast<int32_t>(MaskMode::kBidirectionalSkipNext)) {
    return util::Status::InvalidArgument("bad mask mode");
  }
  config.mask_mode = static_cast<MaskMode>(mask_mode);
  if (config.vocab_size < 2 || config.window < 1 || config.hidden_dim < 1 ||
      config.num_heads < 1 || config.num_blocks < 1 ||
      config.hidden_dim % config.num_heads != 0) {
    return util::Status::InvalidArgument("implausible model config");
  }

  util::Rng rng(1);  // initialization is immediately overwritten
  ModelBundle bundle;
  bundle.model = std::make_unique<TransDasModel>(config, &rng);
  const std::vector<nn::Parameter*> params = bundle.model->Params();
  uint32_t param_count = 0;
  UCAD_RETURN_IF_ERROR(util::ReadU32(is, &param_count));
  if (param_count != params.size()) {
    return util::Status::InvalidArgument("parameter count mismatch");
  }
  for (nn::Parameter* p : params) {
    int32_t rows = 0, cols = 0;
    UCAD_RETURN_IF_ERROR(util::ReadI32(is, &rows));
    UCAD_RETURN_IF_ERROR(util::ReadI32(is, &cols));
    if (rows != p->value().rows() || cols != p->value().cols()) {
      return util::Status::InvalidArgument("parameter shape mismatch");
    }
    std::vector<float> data;
    UCAD_RETURN_IF_ERROR(util::ReadFloatVector(is, &data));
    if (data.size() != p->value().size()) {
      return util::Status::InvalidArgument("parameter size mismatch");
    }
    std::copy(data.begin(), data.end(), p->value().data());
  }
  UCAD_RETURN_IF_ERROR(ReadVocabulary(is, &bundle.vocabulary));
  if (bundle.vocabulary.size() != config.vocab_size) {
    return util::Status::InvalidArgument(
        "vocabulary size does not match model config");
  }
  return bundle;
}

util::Result<ModelBundle> LoadModelFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    return util::Status::NotFound("cannot open " + path);
  }
  return LoadModel(is);
}

}  // namespace ucad::transdas
