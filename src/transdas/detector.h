#ifndef UCAD_TRANSDAS_DETECTOR_H_
#define UCAD_TRANSDAS_DETECTOR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/infer.h"
#include "transdas/config.h"
#include "transdas/model.h"

namespace ucad::transdas {

/// Per-operation detection outcome.
struct OperationVerdict {
  /// Index of the operation within the session.
  int position = 0;
  /// Rank (1 = best) of the observed key among all keys by similarity to
  /// the predicted contextual intent; vocab_size+1 for unknown keys.
  int rank = 0;
  /// True when rank > top_p (or the key was unknown).
  bool abnormal = false;
  /// Similarity of the observed key to the predicted contextual intent
  /// (Eq. 10 logit), from the same logits row that produced `rank`; 0 for
  /// unknown keys, which have no logit.
  float score = 0.0f;
  /// `score` minus the top-p admission cutoff (the top_p-th best logit
  /// over all keys in the same row): >= 0 exactly when rank <= top_p, so
  /// the margin quantifies how close a verdict was to flipping. -inf for
  /// unknown keys.
  float margin = 0.0f;
};

/// Session-level detection result.
struct SessionVerdict {
  bool abnormal = false;
  /// Verdicts for every scored operation (operation 0 has no context and is
  /// never scored).
  std::vector<OperationVerdict> operations;

  /// Positions of abnormal operations.
  std::vector<int> AbnormalPositions() const;
};

/// Online detector (§5.3): scores each operation of an active session by
/// whether its similarity to the Trans-DAS-predicted contextual intent
/// ranks within the top-p over all keys; the first miss flags the session.
class TransDasDetector {
 public:
  /// The model must be trained and must outlive the detector.
  TransDasDetector(TransDasModel* model, const DetectorOptions& options);

  /// Scores a full session.
  SessionVerdict DetectSession(const std::vector<int>& keys) const;

  /// Scores a full session in SHADOW mode: the identical code path and
  /// bitwise-identical verdicts as DetectSession (same pooled contexts,
  /// same window planning, same parallel fan-out), but with the detector's
  /// cumulative observability suppressed — no detector/* counters or
  /// latency observations, no anomaly_rate update, and nothing fed to the
  /// DetectionMonitor's quantiles or PSI drift reference. The canary probe
  /// engine scores through this entry point so synthetic probes never
  /// contaminate the production statistics they are guarding. (Flight
  /// tracing, a sampled debugging ring rather than a statistic, stays on.)
  SessionVerdict ShadowDetectSession(const std::vector<int>& keys) const;

  /// Scores many sessions as one cross-session stream of window spans.
  /// With options().batched, batch_windows > 1, and the fused engine, the
  /// spans of ALL sessions are packed — in input order — into multi-window
  /// batches of up to batch_windows, so partially filled tail windows of
  /// short sessions share GEMMs with their neighbors instead of wasting a
  /// pass each. Verdicts are element-identical to calling DetectSession on
  /// each session (the span plan is a pure function of each session's
  /// length, and batching never changes a computed row — see
  /// docs/INFERENCE.md). Otherwise falls back to per-session DetectSession.
  /// Per-session metrics are still flushed, with the shared setup/score
  /// latency amortized evenly over the scored sessions.
  std::vector<SessionVerdict> DetectSessions(
      const std::vector<std::vector<int>>& sessions) const;

  /// Scores only the latest operation given its preceding keys (the
  /// paper's streaming formulation): returns the rank of `next_key`.
  int RankNextOperation(const std::vector<int>& preceding,
                        int next_key) const;

  /// Streaming formulation with the full verdict: rank, similarity score,
  /// and margin to the top-p cutoff, all from one forward pass. `position`
  /// is left at 0 (the caller knows it). Agrees verdict-for-verdict with
  /// non-batched DetectSession.
  OperationVerdict ScoreNextOperation(const std::vector<int>& preceding,
                                      int next_key) const;

  /// One expected-operation candidate in an explanation.
  struct Candidate {
    int key = 0;
    /// Similarity to the predicted contextual intent (Eq. 10 logit).
    float score = 0.0f;
  };

  /// Explains a verdict for the operation at `position` of `keys`: the
  /// top-k keys the contextual intent actually expected there, best first.
  /// Useful for the expert-triage stage (§5.3): "the context predicted
  /// these operations; the session performed something else".
  std::vector<Candidate> ExplainOperation(const std::vector<int>& keys,
                                          int position, int top_k = 5) const;

  /// One context operation's contribution to a verdict.
  struct AttributionEntry {
    /// Session position of the contributing context operation.
    int session_position = 0;
    /// Key at that position (as the scoring window saw it, i.e. sanitized).
    int key = 0;
    /// Share of the final block's attention mass the intent prediction
    /// spent on this position, averaged over heads (each head's row sums
    /// to 1, so shares across the window sum to ~1).
    float attention = 0.0f;
    /// Exact leave-one-out counterfactual: the verdict of the observed
    /// operation with this context position masked to k0 — one tail-
    /// restricted row forward, bitwise-identical to scoring the edited
    /// session from scratch.
    nn::RowScore counterfactual;
  };

  /// Attribution of one verdict: the re-derived base verdict plus the
  /// top-k contributing context positions, attention-descending.
  struct VerdictAttribution {
    OperationVerdict verdict;
    std::vector<AttributionEntry> contributions;
  };

  /// Attributes the verdict at `position` of `keys` to its context: which
  /// window positions the final block attended to when predicting the
  /// contextual intent (captured from the same forward that re-derives
  /// the verdict — no extra pass), and how the verdict shifts when each
  /// top-attributed context operation is masked out. Runs on the tape-free
  /// engine regardless of options().use_tape_engine (the engines agree
  /// bitwise, and only nn/infer exposes the attribution hook). Off the
  /// detection hot path: call it for abnormal/promoted windows only.
  VerdictAttribution AttributeOperation(const std::vector<int>& keys,
                                        int position, int top_k = 5) const;

  const DetectorOptions& options() const { return options_; }

 private:
  /// Shared body of DetectSession and ShadowDetectSession; `shadow` only
  /// gates the end-of-session metrics flush, never the scoring itself.
  SessionVerdict DetectSessionImpl(const std::vector<int>& keys,
                                   bool shadow) const;

  /// Fills rank/score/margin/abnormal of `op` from one row of all-key
  /// logits — delegates to nn::ScoreLogitsRow, the single-pass source of
  /// truth shared by both detection modes and the audit log.
  void ScoreKey(const nn::Tensor& logits, int row, int key,
                OperationVerdict* op) const;

  /// Right-aligned detection window: the last min(L, count) keys of
  /// keys[0..count), sanitized, with k0 left-padding.
  std::vector<int> BuildWindow(const std::vector<int>& keys, int count) const;

  /// Runs one L-key window through the configured engine and hands the
  /// [L x vocab] all-key logits to `fn` (valid only during the call). The
  /// single forward+logits site shared by the streaming scorer, the
  /// explainer, and batched session detection: the autograd tape when
  /// options_.use_tape_engine, the tape-free nn/infer engine otherwise.
  /// `fn` must only read logits rows >= rows_from — the inference engine
  /// skips the final block's row-wise tail below that row (the tape engine
  /// always computes the full window, so the rows it hands over agree
  /// bitwise either way). `slide` forwards to ForwardInference's
  /// WindowSlideCache (ignored by the tape engine and by models without
  /// slide-cache support).
  void WithWindowLogits(const std::vector<int>& input, int rows_from,
                        const std::function<void(const nn::Tensor&)>& fn,
                        bool slide = false) const;

  /// One window span of the batched formulation: the window is
  /// padded[w .. w+L-1], it owns session positions [lo, w], and writes its
  /// verdicts into `ops` (sized n-1 for a session of n keys). The pointers
  /// alias the caller's storage for the duration of a DetectSession(s) call.
  struct BatchSpan {
    const std::vector<int>* padded;
    const std::vector<int>* keys;
    std::vector<OperationVerdict>* ops;
    int w = 0;
    int lo = 0;
    int n = 0;
  };

  /// Plans the batched window spans of one padded session (the same plan
  /// DetectSession's batched mode walks: advance by L, clamp the tail) and
  /// appends them to `out`. Pure function of (n, L) — neither thread count
  /// nor batch packing changes which window owns a position.
  static void AppendSpans(const std::vector<int>* padded,
                          const std::vector<int>* keys,
                          std::vector<OperationVerdict>* ops, int n, int L,
                          std::vector<BatchSpan>* out);

  /// Scores `count` spans as one multi-window batch on `ctx` (capacity
  /// fixes the workspace shapes so partial batches reuse the same slots);
  /// one flight trace covers the batch, summarized by its worst verdict.
  void ScoreSpanBatch(nn::InferenceContext* ctx, const BatchSpan* spans,
                      int count, int capacity) const;

  std::unique_ptr<nn::InferenceContext> AcquireContext() const;
  void ReleaseContext(std::unique_ptr<nn::InferenceContext> ctx) const;

  TransDasModel* model_;
  DetectorOptions options_;
  /// Free list of inference contexts: scoring lanes lease one per window
  /// and return it, so workspaces stay warm across windows and sessions
  /// (zero steady-state allocation). Grows to the peak lane count.
  mutable std::mutex ctx_mutex_;
  mutable std::vector<std::unique_ptr<nn::InferenceContext>> ctx_pool_;
};

}  // namespace ucad::transdas

#endif  // UCAD_TRANSDAS_DETECTOR_H_
