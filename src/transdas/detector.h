#ifndef UCAD_TRANSDAS_DETECTOR_H_
#define UCAD_TRANSDAS_DETECTOR_H_

#include <vector>

#include "transdas/config.h"
#include "transdas/model.h"

namespace ucad::transdas {

/// Per-operation detection outcome.
struct OperationVerdict {
  /// Index of the operation within the session.
  int position = 0;
  /// Rank (1 = best) of the observed key among all keys by similarity to
  /// the predicted contextual intent; vocab_size+1 for unknown keys.
  int rank = 0;
  /// True when rank > top_p (or the key was unknown).
  bool abnormal = false;
};

/// Session-level detection result.
struct SessionVerdict {
  bool abnormal = false;
  /// Verdicts for every scored operation (operation 0 has no context and is
  /// never scored).
  std::vector<OperationVerdict> operations;

  /// Positions of abnormal operations.
  std::vector<int> AbnormalPositions() const;
};

/// Online detector (§5.3): scores each operation of an active session by
/// whether its similarity to the Trans-DAS-predicted contextual intent
/// ranks within the top-p over all keys; the first miss flags the session.
class TransDasDetector {
 public:
  /// The model must be trained and must outlive the detector.
  TransDasDetector(TransDasModel* model, const DetectorOptions& options);

  /// Scores a full session.
  SessionVerdict DetectSession(const std::vector<int>& keys) const;

  /// Scores only the latest operation given its preceding keys (the
  /// paper's streaming formulation): returns the rank of `next_key`.
  int RankNextOperation(const std::vector<int>& preceding,
                        int next_key) const;

  /// One expected-operation candidate in an explanation.
  struct Candidate {
    int key = 0;
    /// Similarity to the predicted contextual intent (Eq. 10 logit).
    float score = 0.0f;
  };

  /// Explains a verdict for the operation at `position` of `keys`: the
  /// top-k keys the contextual intent actually expected there, best first.
  /// Useful for the expert-triage stage (§5.3): "the context predicted
  /// these operations; the session performed something else".
  std::vector<Candidate> ExplainOperation(const std::vector<int>& keys,
                                          int position, int top_k = 5) const;

  const DetectorOptions& options() const { return options_; }

 private:
  /// Rank of `key` within a row of all-key logits (row = output position).
  int RankOfKey(const nn::Tensor& logits, int row, int key) const;

  TransDasModel* model_;
  DetectorOptions options_;
};

}  // namespace ucad::transdas

#endif  // UCAD_TRANSDAS_DETECTOR_H_
