#ifndef UCAD_OBS_SNAPSHOT_H_
#define UCAD_OBS_SNAPSHOT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ucad::obs {

/// Minimal parse-only JSON document model: enough to read metrics snapshots
/// (JSONL) and run manifests without an external dependency.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// number when kNumber, else `fallback`.
  double NumberOr(double fallback) const;
};

/// Parses exactly one JSON document (trailing whitespace allowed).
util::Result<JsonValue> ParseJson(const std::string& text);

/// One metric series loaded from a snapshot.
struct MetricSample {
  std::string name;    ///< bare metric name
  std::string series;  ///< name{k=v,...} — unique key within a snapshot
  std::string type;    ///< "counter" | "gauge" | "histogram"
  double value = 0.0;  ///< counter/gauge value
  // Histogram summary fields (zero for counters/gauges).
  double count = 0.0, sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;

  /// The value compared by bench_compare: histograms use `min` (the
  /// noise-robust min-of-N statistic within a run), counters/gauges use
  /// `value`.
  double Statistic() const;
};

/// A full snapshot, keyed by MetricSample::series.
using Snapshot = std::map<std::string, MetricSample>;

/// Loads a registry snapshot from either format we emit: a JSONL metrics
/// file (one object per line) or a run manifest (JSON object with a
/// "metrics" array).
util::Result<Snapshot> LoadSnapshotFile(const std::string& path);
util::Result<Snapshot> ParseSnapshot(const std::string& text);

/// Per-series min-of-N merge across repeated runs: timing-class series keep
/// the minimum statistic observed (noise-robust), everything else keeps the
/// first occurrence.
Snapshot MergeMinOfN(const std::vector<Snapshot>& runs);

/// Windowed delta `later - earlier` over two snapshots of the same
/// registry. Counters subtract with a clamp at zero. Histograms subtract
/// count/sum; when the later snapshot carries FEWER observations than the
/// earlier one (the producing process restarted between scrapes, so the
/// earlier baseline describes a dead counter stream) the whole series
/// clamps to EMPTY — zero count/sum and zeroed distribution stats — rather
/// than underflowing. Gauges keep the later instantaneous value.
/// Distribution stats (min/max/mean/percentiles) of a non-empty histogram
/// delta are NOT derivable from two summary snapshots and are zeroed;
/// use TimeSeriesStore::HistogramWindow for real windowed percentiles.
/// Series absent from `earlier` pass through as their later value (a
/// series born inside the window is all delta).
Snapshot SubtractSnapshots(const Snapshot& later, const Snapshot& earlier);

/// How a metric is gated during comparison.
enum class MetricClass {
  kTiming,  ///< wall-time-like — gated with relative tolerance
  kCount,   ///< counters — structural, reported but not gated by default
  kOther,   ///< quality metrics etc. — informational only
};

/// Timing when the bare name ends in _ms/_us/_ns/_seconds or mentions
/// latency; kCount for counters; kOther otherwise.
MetricClass ClassifyMetric(const std::string& name, const std::string& type);

struct CompareOptions {
  /// Allowed relative growth for timing metrics (0.25 = +25%).
  double rel_tolerance = 0.25;
  /// Absolute growth below this many milliseconds is never a regression —
  /// keeps micro-timings from tripping the gate on scheduler noise.
  double abs_floor_ms = 0.5;
  /// Treat baseline series missing from the candidate as failures.
  bool fail_on_missing = false;
  /// Gate counters on exact equality (off by default: counts legitimately
  /// change with workload shape).
  bool check_counters = false;
};

struct MetricDiff {
  std::string series;
  double baseline = 0.0;
  double candidate = 0.0;
  /// (candidate - baseline) / baseline; 0 when baseline is 0.
  double rel_change = 0.0;
};

struct CompareReport {
  std::vector<MetricDiff> regressions;   ///< gate failures
  std::vector<MetricDiff> improvements;  ///< timing drops beyond tolerance
  std::vector<std::string> missing_in_candidate;
  std::vector<std::string> missing_in_baseline;
  int compared = 0;

  bool Ok(const CompareOptions& options) const {
    return regressions.empty() &&
           (!options.fail_on_missing || missing_in_candidate.empty());
  }
  /// Human-readable multi-line report (empty diff => "no regressions").
  std::string Format(const CompareOptions& options) const;
};

/// Diffs candidate against baseline under the given thresholds.
CompareReport CompareSnapshots(const Snapshot& baseline,
                               const Snapshot& candidate,
                               const CompareOptions& options);

}  // namespace ucad::obs

#endif  // UCAD_OBS_SNAPSHOT_H_
