#ifndef UCAD_OBS_AUDIT_LOG_H_
#define UCAD_OBS_AUDIT_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/explain.h"
#include "util/status.h"

namespace ucad::obs {

/// One expected-operation candidate recorded alongside a verdict (what the
/// contextual intent predicted instead of the observed key).
struct AuditCandidate {
  int key = 0;
  float score = 0.0f;
};

/// One per-verdict forensic record: everything needed to triage "why was
/// this operation flagged" after the fact, without re-running the model.
/// Serialized as a single JSONL line (see docs/OBSERVABILITY.md for the
/// schema).
struct AuditRecord {
  /// Caller-assigned session identity (log line range, user, ...).
  std::string session_id;
  /// Operation index within the session (operation 0 is never scored).
  int position = 0;
  /// Observed key at `position`.
  int key = 0;
  /// Optional human-readable form of the observed key (SQL template).
  std::string observed;
  /// Rank of the observed key among all keys (1 = best); vocab_size+1
  /// when the key was unknown to the model.
  int rank = 0;
  /// Similarity of the observed key to the predicted contextual intent
  /// (Eq. 10 logit); 0 for unknown keys, which have no logit.
  float score = 0.0f;
  /// score minus the top-p admission cutoff; >= 0 iff the verdict was
  /// normal. Non-finite (serialized as JSON null) for unknown keys.
  float margin = 0.0f;
  bool abnormal = false;
  /// Top-k keys the contextual intent expected at this position, best
  /// first (TransDasDetector::ExplainOperation); usually populated only
  /// for abnormal verdicts to keep the hot path cheap.
  std::vector<AuditCandidate> expected;
  /// Verdict attribution (top contributing context positions with exact
  /// leave-one-out counterfactuals, plus the incident signature). Written
  /// only when has_explain — attribution costs extra row forwards, so it
  /// is computed for abnormal verdicts only and is off by default.
  ExplainBlock explain;
  bool has_explain = false;
  /// Wall-clock unix milliseconds; stamped by AuditLog::Append when 0.
  int64_t wall_ms = 0;
  /// Model/config fingerprint (hex FNV-1a, same value the run manifest
  /// records); stamped from AuditLogOptions::model_hash when empty.
  std::string model_hash;
};

/// Serializes one record as a single-line JSON object (no trailing
/// newline). Non-finite score/margin become JSON null.
std::string AuditRecordToJson(const AuditRecord& record);
/// Parses one JSONL line back into a record (inverse of ToJson).
util::Result<AuditRecord> ParseAuditRecord(const std::string& json_line);
/// Loads a whole audit log; blank lines are skipped, a malformed line is
/// an error.
util::Result<std::vector<AuditRecord>> ReadAuditLogFile(
    const std::string& path);

struct AuditLogOptions {
  /// Maximum records buffered between the scoring thread and the writer
  /// thread. Append drops (and counts) records beyond this, so a slow
  /// disk back-pressures into data loss, never into scoring latency.
  size_t queue_capacity = 8192;
  /// Default model/config fingerprint stamped into records that carry
  /// none.
  std::string model_hash;
  /// Size cap in bytes for the live file. 0 disables rotation. When a
  /// batch write pushes the file past the cap, the writer thread closes
  /// it, renames it to "<path>.1" (replacing any previous rollover), and
  /// reopens a fresh <path> — so a long-lived monitor keeps at most two
  /// files around instead of filling the disk. Checked between batches,
  /// never mid-record, so both files always hold whole JSONL lines.
  uint64_t max_bytes = 0;
};

/// Append-only JSONL audit sink with a bounded buffer and a dedicated
/// writer thread: Append() formats nothing and performs no I/O — it moves
/// the record into an in-memory queue under a mutex and returns, so the
/// hot scoring path never blocks on the filesystem. The writer thread
/// drains the queue in batches. Destruction (or Close) drains what was
/// accepted and joins the thread.
class AuditLog {
 public:
  /// Opens `path` for writing (truncates). Fails if the file cannot be
  /// created.
  static util::Result<std::unique_ptr<AuditLog>> Open(
      const std::string& path, AuditLogOptions options = {});

  ~AuditLog();
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Enqueues one record (non-blocking). Stamps wall_ms / model_hash when
  /// unset. Returns false when the buffer was full and the record was
  /// dropped.
  bool Append(AuditRecord record);

  /// Blocks until every record accepted so far is on disk (fstream
  /// flushed).
  void Flush();

  /// Flush + join the writer thread + close the file. Idempotent; called
  /// by the destructor.
  void Close();

  uint64_t appended() const;
  uint64_t dropped() const;
  /// Number of size-cap rollovers performed (see AuditLogOptions::max_bytes).
  uint64_t rotations() const;
  const std::string& path() const { return path_; }

 private:
  AuditLog(std::string path, std::ofstream os, AuditLogOptions options);

  void WriterLoop();
  /// Writer-thread only: rolls the live file over to <path>.1 when the cap
  /// is exceeded.
  void MaybeRotate();

  const std::string path_;
  const AuditLogOptions options_;

  mutable std::mutex mu_;
  std::condition_variable queue_ready_;   // writer waits for work/stop
  std::condition_variable queue_drained_; // Flush waits for empty queue
  std::vector<AuditRecord> queue_;
  bool stopping_ = false;
  bool writer_idle_ = true;
  uint64_t appended_ = 0;
  uint64_t dropped_ = 0;
  uint64_t rotations_ = 0;

  std::ofstream os_;  // touched only by the writer thread (and Close)
  uint64_t bytes_written_ = 0;  // live-file size; writer thread only
  std::thread writer_;
};

}  // namespace ucad::obs

#endif  // UCAD_OBS_AUDIT_LOG_H_
