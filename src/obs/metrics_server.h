#ifndef UCAD_OBS_METRICS_SERVER_H_
#define UCAD_OBS_METRICS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace ucad::obs {

/// Minimal single-threaded HTTP/1.0 scrape endpoint on a dedicated
/// blocking-accept thread. Serves:
///
///   GET /metrics  -> Prometheus text exposition of the registry
///   GET /healthz  -> "ok"
///
/// anything else is 404. One request per connection (Connection: close),
/// which is exactly the Prometheus scrape model — this is deliberately not
/// a general HTTP server. The accept thread touches the registry only
/// through its thread-safe read surface, so serving concurrently with
/// scoring is safe. Opt-in (e.g. `ucad_cli ... --serve-metrics <port>`);
/// nothing is spawned unless Start() is called.
class MetricsHttpServer {
 public:
  /// Serves `registry` (DefaultMetrics() when null).
  explicit MetricsHttpServer(MetricsRegistry* registry = nullptr);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see port()) and starts
  /// the accept thread. Fails if already serving or the bind/listen fails.
  util::Status Start(int port);

  /// Closes the listening socket and joins the accept thread. Idempotent;
  /// called by the destructor.
  void Stop();

  bool serving() const { return listen_fd_.load() >= 0; }
  /// The bound port (resolved after Start; 0 when not serving).
  int port() const { return port_; }
  /// Requests answered so far (any route).
  uint64_t requests() const { return requests_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  MetricsRegistry* registry_;
  /// proc/uptime_seconds, refreshed per /metrics scrape (set by Start).
  Gauge* uptime_gauge_ = nullptr;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace ucad::obs

#endif  // UCAD_OBS_METRICS_SERVER_H_
