#ifndef UCAD_OBS_METRICS_SERVER_H_
#define UCAD_OBS_METRICS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/status.h"

namespace ucad::obs {

/// Minimal single-threaded HTTP/1.0 scrape endpoint on a dedicated
/// blocking-accept thread. Serves:
///
///   GET /metrics  -> Prometheus text exposition of the registry
///   GET /healthz  -> health handler when set (SLO rollup), else "ok"
///   GET /history  -> retained time-series JSON when a store is attached
///                    (?ticks=N limits to the newest N ticks, ?prefix=p
///                    filters series by name prefix)
///
/// Unknown paths get 404 with a body; non-GET methods get 405 with an
/// Allow header. One request per connection (Connection: close), which is
/// exactly the Prometheus scrape model — this is deliberately not a
/// general HTTP server. The accept thread touches the registry only
/// through its thread-safe read surface, so serving concurrently with
/// scoring is safe. Opt-in (e.g. `ucad_cli ... --serve-metrics <port>`);
/// nothing is spawned unless Start() is called.
class MetricsHttpServer {
 public:
  /// Serves `registry` (DefaultMetrics() when null).
  explicit MetricsHttpServer(MetricsRegistry* registry = nullptr);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Readiness answer: HTTP status code + text body. The server maps any
  /// code >= 500 to reason "Service Unavailable".
  using HealthHandler = std::function<std::pair<int, std::string>()>;

  /// Routes /healthz through `handler` (the SLO rollup). May be replaced
  /// while serving: the handler cell is swapped under a lock and invoked
  /// outside it. Null restores the static "ok" answer.
  void SetHealthHandler(HealthHandler handler);

  /// Serves `store`'s HistoryJson from /history. The store must outlive
  /// the server (or be detached with nullptr first). Without a store,
  /// /history answers 404.
  void SetHistorySource(const TimeSeriesStore* store);

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see port()) and starts
  /// the accept thread. Fails if already serving or the bind/listen fails.
  util::Status Start(int port);

  /// Closes the listening socket and joins the accept thread. Idempotent;
  /// called by the destructor.
  void Stop();

  bool serving() const { return listen_fd_.load() >= 0; }
  /// The bound port (resolved after Start; 0 when not serving).
  int port() const { return port_; }
  /// Requests answered so far (any route).
  uint64_t requests() const { return requests_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  MetricsRegistry* registry_;
  /// proc/uptime_seconds, refreshed per /metrics scrape (set by Start).
  Gauge* uptime_gauge_ = nullptr;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;

  mutable std::mutex handler_mu_;
  HealthHandler health_handler_;
  std::atomic<const TimeSeriesStore*> history_source_{nullptr};
};

}  // namespace ucad::obs

#endif  // UCAD_OBS_METRICS_SERVER_H_
