#include "obs/slo.h"

#include <algorithm>
#include <cstdio>

namespace ucad::obs {

namespace {

std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

const char* HealthGradeName(HealthGrade grade) {
  switch (grade) {
    case HealthGrade::kOk:
      return "ok";
    case HealthGrade::kDegraded:
      return "degraded";
    case HealthGrade::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

std::string HealthReport::ToText() const {
  std::string out = HealthGradeName(grade);
  out += "\n";
  size_t ok_count = 0;
  for (const SloStatus& s : slos) {
    if (s.grade == HealthGrade::kOk) {
      ++ok_count;
      continue;
    }
    out += "slo ";
    out += s.name;
    out += " ";
    out += HealthGradeName(s.grade);
    out += ": ";
    out += s.reason;
    out += " (burn fast " + FormatValue(s.burn_fast) + ", slow " +
           FormatValue(s.burn_slow) + ")\n";
  }
  out += "slo ok: " + std::to_string(ok_count) + "/" +
         std::to_string(slos.size()) + "\n";
  return out;
}

std::string HealthReport::ToJson() const {
  std::string out = "{\"status\":\"";
  out += HealthGradeName(grade);
  out += "\",\"evaluated_unix_ms\":" + std::to_string(evaluated_unix_ms);
  out += ",\"slos\":[";
  for (size_t i = 0; i < slos.size(); ++i) {
    const SloStatus& s = slos[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"status\":\"";
    out += HealthGradeName(s.grade);
    out += "\",\"measured\":" + FormatValue(s.measured);
    out += ",\"burn_fast\":" + FormatValue(s.burn_fast);
    out += ",\"burn_slow\":" + FormatValue(s.burn_slow);
    out += ",\"reason\":\"" + JsonEscape(s.reason) + "\"}";
  }
  out += "]}";
  return out;
}

SloEvaluator::SloEvaluator(std::vector<SloSpec> specs,
                           const TimeSeriesStore* store,
                           MetricsRegistry* registry)
    : specs_(std::move(specs)),
      store_(store),
      registry_(registry != nullptr ? registry : &DefaultMetrics()) {}

bool SloEvaluator::WindowBurn(const SloSpec& spec, int64_t window_ms,
                              double* burn, double* measured) const {
  switch (spec.signal) {
    case SloSignal::kGauge: {
      double v;
      if (!store_->GaugeMax(spec.series, window_ms, &v)) return false;
      *measured = v;
      *burn = spec.ceiling > 0.0 ? v / spec.ceiling : (v > 0.0 ? 2.0 : 0.0);
      return true;
    }
    case SloSignal::kGaugeBand: {
      // The ceiling side burns on the window max, the floor side on the
      // window min — a band violation in either direction within the
      // window counts.
      double hi, lo;
      if (!store_->GaugeMax(spec.series, window_ms, &hi) ||
          !store_->GaugeMin(spec.series, window_ms, &lo)) {
        return false;
      }
      const double above =
          spec.ceiling > 0.0 ? hi / spec.ceiling : (hi > 0.0 ? 2.0 : 0.0);
      // Linear in the shortfall: at the floor burn is 1, at zero it is 2.
      const double below =
          spec.floor > 0.0 ? 2.0 - lo / spec.floor : 0.0;
      *burn = std::max({above, below, 0.0});
      *measured = above >= below ? hi : lo;
      return true;
    }
    case SloSignal::kCounterRatio: {
      double num, den;
      if (!store_->CounterRate(spec.series, window_ms, &num) ||
          !store_->CounterRate(spec.denominator, window_ms, &den)) {
        return false;
      }
      if (den <= 0.0) return false;  // no denominator events: no signal
      const double ratio = num / den;
      *measured = ratio;
      *burn = spec.ceiling > 0.0 ? ratio / spec.ceiling
                                 : (ratio > 0.0 ? 2.0 : 0.0);
      return true;
    }
    case SloSignal::kHistogramP99: {
      WindowedHistogram w;
      if (!store_->HistogramWindow(spec.series, window_ms, &w) ||
          w.count == 0) {
        return false;
      }
      *measured = w.p99;
      *burn = spec.ceiling > 0.0 ? w.p99 / spec.ceiling
                                 : (w.p99 > 0.0 ? 2.0 : 0.0);
      return true;
    }
  }
  return false;
}

SloStatus SloEvaluator::EvaluateOne(const SloSpec& spec) const {
  SloStatus status;
  status.name = spec.name;
  double fast_measured = 0.0, slow_measured = 0.0;
  const bool have_fast = WindowBurn(spec, spec.fast_window_ms,
                                    &status.burn_fast, &fast_measured);
  const bool have_slow = WindowBurn(spec, spec.slow_window_ms,
                                    &status.burn_slow, &slow_measured);
  if (!have_fast) status.burn_fast = 0.0;
  if (!have_slow) status.burn_slow = 0.0;
  status.measured = have_fast ? fast_measured : slow_measured;
  // Multi-window rule: breach only when BOTH windows are out of budget.
  if (have_fast && have_slow && status.burn_fast > 1.0 &&
      status.burn_slow > 1.0) {
    const double floor_burn = std::min(status.burn_fast, status.burn_slow);
    status.grade = floor_burn >= spec.unhealthy_factor
                       ? HealthGrade::kUnhealthy
                       : HealthGrade::kDegraded;
    status.reason = spec.description.empty()
                        ? spec.series + " out of budget"
                        : spec.description;
    status.reason += ", measured " + FormatValue(status.measured);
    if (spec.signal == SloSignal::kGaugeBand) {
      status.reason += " outside [" + FormatValue(spec.floor) + ", " +
                       FormatValue(spec.ceiling) + "]";
    } else {
      status.reason += " vs ceiling " + FormatValue(spec.ceiling);
    }
  }
  return status;
}

HealthReport SloEvaluator::Evaluate() const {
  HealthReport report;
  report.evaluated_unix_ms = store_->LatestTickMs();
  for (const SloSpec& spec : specs_) {
    report.slos.push_back(EvaluateOne(spec));
    report.grade = std::max(report.grade, report.slos.back().grade);
  }
  return report;
}

HealthReport SloEvaluator::EvaluateAndPublish() {
  const HealthReport report = Evaluate();
  registry_->GetGauge("slo/status")
      ->Set(static_cast<double>(static_cast<int>(report.grade)));
  for (const SloStatus& s : report.slos) {
    const Labels labels = {{"slo", s.name}};
    registry_->GetGauge("slo/burn_rate", labels)
        ->Set(std::max(s.burn_fast, s.burn_slow));
    registry_->GetGauge("slo/ok", labels)
        ->Set(s.grade == HealthGrade::kOk ? 1.0 : 0.0);
  }
  return report;
}

std::vector<SloSpec> DefaultSloSpecs() {
  std::vector<SloSpec> specs;
  // Ceilings are failure-mode thresholds, not performance targets: they
  // must hold on cold undertrained smoke models in CI as well as on real
  // deployments, so each leaves generous headroom.
  specs.push_back({.name = "score-p99",
                   .signal = SloSignal::kHistogramP99,
                   .series = "detector/score_latency_ms",
                   .ceiling = 250.0,
                   .description = "per-window score latency p99 (ms)"});
  specs.push_back({.name = "anomaly-band",
                   .signal = SloSignal::kGaugeBand,
                   .series = "detector/anomaly_rate",
                   .ceiling = 0.9,
                   .floor = 0.0,  // no lower bound by default
                   .description = "session anomaly rate band"});
  specs.push_back({.name = "psi-drift",
                   .signal = SloSignal::kGauge,
                   .series = "detector/drift/psi",
                   .ceiling = 0.25,
                   .description = "rank-distribution PSI vs reference"});
  specs.push_back({.name = "canary-miss",
                   .signal = SloSignal::kCounterRatio,
                   .series = "canary/missed_flag_total",
                   .denominator = "canary/expected_flag_total",
                   .ceiling = 0.5,
                   .description = "canary probes expected to flag that "
                                  "scored clean"});
  // The false-flag ceiling tracks the detector's intrinsic FP rate, which
  // on small demo models sits near 0.5 — the ceiling catches "flags
  // everything" (probing an untrained scenario pushes the ratio to ~1.0),
  // not ordinary precision.
  specs.push_back({.name = "canary-false-flag",
                   .signal = SloSignal::kCounterRatio,
                   .series = "canary/false_flag_total",
                   .denominator = "canary/clean_probes_total",
                   .ceiling = 0.8,
                   .description = "known-normal canary probes that "
                                  "flagged abnormal"});
  specs.push_back({.name = "audit-drop",
                   .signal = SloSignal::kCounterRatio,
                   .series = "audit/dropped_total",
                   .denominator = "audit/records_total",
                   .ceiling = 0.01,
                   .description = "audit records dropped"});
  specs.push_back({.name = "flight-drop",
                   .signal = SloSignal::kCounterRatio,
                   .series = "flight/dropped_total",
                   .denominator = "flight/records_total",
                   .ceiling = 0.10,
                   .description = "flight traces dropped"});
  return specs;
}

}  // namespace ucad::obs
