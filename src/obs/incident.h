#ifndef UCAD_OBS_INCIDENT_H_
#define UCAD_OBS_INCIDENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/audit_log.h"

namespace ucad::obs {

class MetricsRegistry;

struct IncidentOptions {
  /// Incidents whose last verdict is older than this are reported as
  /// resolved (no longer "open"). 0 disables the age-out: every incident
  /// ever seen stays open.
  int64_t open_window_ms = 15 * 60 * 1000;
  /// How many incidents (by verdict count, descending) get per-incident
  /// labeled gauges from PublishMetrics.
  int top_n = 5;
};

/// One incident: the rollup of every abnormal verdict sharing a signature
/// (same offending template flagged against the same set of
/// top-contributing context templates — see IncidentSignature).
struct Incident {
  uint64_t signature = 0;
  /// Offending template (or "key:<n>" when no template is known).
  std::string offending;
  /// Sorted top-contributing context templates (the signature's inputs).
  std::vector<std::string> context;
  /// Number of abnormal verdicts folded in.
  uint64_t count = 0;
  int64_t first_seen_ms = 0;
  int64_t last_seen_ms = 0;
  /// Worst (highest) observed rank and its score across the incident.
  int worst_rank = 0;
  float worst_score = 0.0f;
  /// Session/position of the worst-rank verdict — the triage entry point
  /// (join against the flight recorder / audit log for the full window).
  std::string exemplar_session;
  int exemplar_position = 0;
};

/// Online incident aggregator: folds per-verdict audit records into
/// incidents keyed by their explain signature, so a thousand repetitions
/// of the same anomaly read as one incident with a count, not a thousand
/// alert lines. Thread-safe; designed to sit next to the audit log on the
/// detection path (Observe is a map upsert under a mutex — no I/O, no
/// model access).
class IncidentAggregator {
 public:
  explicit IncidentAggregator(IncidentOptions options = {});

  /// Folds one verdict. Records that are not abnormal or carry no explain
  /// block are ignored (returns false), so callers can feed every audit
  /// record through unconditionally.
  bool Observe(const AuditRecord& record);

  /// All incidents, most verdicts first (ties: earliest first_seen first).
  std::vector<Incident> Snapshot() const;

  /// Total abnormal verdicts folded / distinct incidents seen.
  uint64_t VerdictsTotal() const;
  uint64_t IncidentsTotal() const;
  /// Incidents whose last verdict is within open_window_ms of `now_ms`
  /// (all of them when open_window_ms is 0).
  uint64_t OpenIncidents(int64_t now_ms) const;

  /// Exports the rollup: detector/incidents_total and
  /// detector/incidents_open gauges, plus per-incident
  /// detector/incident/{count,worst_rank,last_seen_ms} gauges labeled with
  /// signature+offending for the top_n incidents by count.
  void PublishMetrics(MetricsRegistry* registry, int64_t now_ms) const;

  const IncidentOptions& options() const { return options_; }

 private:
  const IncidentOptions options_;
  mutable std::mutex mu_;
  std::map<uint64_t, Incident> incidents_;
  uint64_t verdicts_total_ = 0;
};

/// Renders the aggregator state as a human-readable triage table (one line
/// per incident, count-descending, at most `top_n`; empty string when no
/// incidents). Shared by ucad_cli's end-of-run summary and
/// tools/incident_report.
std::string FormatIncidentTable(const std::vector<Incident>& incidents,
                                int top_n);

}  // namespace ucad::obs

#endif  // UCAD_OBS_INCIDENT_H_
