#ifndef UCAD_OBS_FLIGHT_H_
#define UCAD_OBS_FLIGHT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace ucad::obs {

/// Pipeline stages of one scored window, in execution order. Each stage's
/// wall time is attributed by FlightStageBoundary ("everything since the
/// previous boundary belongs to the stage that just finished"), so the
/// per-stage times of a trace always sum to its total.
enum class FlightStage : int {
  /// Window construction + inference-context pool lease (or tape setup).
  kContextAcquire = 0,
  /// Embedding-row gather + position embedding add.
  kEmbed,
  /// Per-block attention (packed QKV matmul, per-head softmax/context,
  /// output projection, residual layer norm), summed over blocks.
  kAttention,
  /// Per-block feed-forward (w1/relu/w2 + residual norm), summed.
  kFfn,
  /// Final-row all-key logits matmul.
  kLogits,
  /// Eq. 10 rank/score/margin scan over the logits row(s).
  kScore,
  /// Verdict-slot write + end-of-window bookkeeping (End's residual).
  kVerdict,
};
inline constexpr int kFlightStageCount = 7;

/// Stable snake_case stage name ("context_acquire", "embed", ...); used in
/// metric names (detector/stage/<name>_ms) and flight_inspect tables.
const char* FlightStageName(int stage);

/// WindowTrace::flags bits: why a trace was promoted to the retained
/// detail buffer (0 = not promoted, aged out of the ring normally).
inline constexpr uint32_t kFlightAbnormal = 1u << 0;  // abnormal verdict
inline constexpr uint32_t kFlightDrift = 1u << 1;     // drift alert active
inline constexpr uint32_t kFlightSlow = 1u << 2;      // top latency quantile

/// One scored window's flight record: fixed-size, trivially copyable, so
/// ring slots can be dumped raw from a fatal-signal handler and parsed
/// offline. 80 bytes; the on-disk format (FlightDumpHeader) records the
/// size so a parser can reject a layout it does not understand.
struct WindowTrace {
  /// Global 1-based completion order (also the ring-slot commit word).
  uint64_t seq = 0;
  /// FNV-1a hash of the caller-scoped session id (0 = no session scope);
  /// hash the audit log's session_id to cross-reference.
  uint64_t session_hash = 0;
  /// Wall-clock unix milliseconds at completion.
  int64_t wall_ms = 0;
  /// Per-stage wall time, ms (indexed by FlightStage).
  float stage_ms[kFlightStageCount] = {};
  /// Begin..End wall time, ms (== sum of stage_ms up to fp rounding).
  float total_ms = 0.0f;
  /// First session position this window scored.
  int32_t position = 0;
  /// Worst (largest) rank scored in the window.
  int32_t rank = 0;
  /// Score/margin of the worst-ranked operation.
  float score = 0.0f;
  float margin = 0.0f;
  /// Thread-pool jobs in flight when the window began (queue depth at
  /// dequeue; 0 when the global pool was never created).
  int32_t queue_depth = 0;
  /// kFlightAbnormal | kFlightDrift | kFlightSlow promotion bits.
  uint32_t flags = 0;
};
static_assert(std::is_trivially_copyable_v<WindowTrace>);
static_assert(sizeof(WindowTrace) == 80, "dump format depends on layout");

struct FlightOptions {
  /// Traces per lane ring (rounded up to a power of two). A lane belongs
  /// to one writer thread, so pushes are wait-free plain stores.
  int lane_capacity = 1024;
  /// Max writer threads with their own lane; threads beyond this drop
  /// their traces (counted) rather than contend.
  int max_lanes = 64;
  /// Promoted-trace detail ring (tail-sampled records kept past ring
  /// age-out).
  int retained_capacity = 256;
  /// Latency quantile above which a window is promoted as "slow" (P²
  /// estimate over total_ms).
  double slow_quantile = 0.95;
  /// Windows observed before the latency promotion engages (the P²
  /// estimate is meaningless on a handful of samples).
  uint64_t slow_warmup = 128;
};

struct FlightDump;

/// Always-on, low-overhead flight recorder: every scored window leaves one
/// WindowTrace in a per-thread lock-free ring. Normal windows age out as
/// the ring wraps; anomalous, drift-flagged, or top-latency-quantile
/// windows are promoted to a retained detail ring and exported as
/// histogram exemplars. The rings use a per-slot commit-sequence protocol
/// (commit=0 while a write is in flight, then the trace's seq), so readers
/// — Snapshot(), the binary dump writer, and the fatal-signal handler —
/// never need a lock and tolerate torn slots.
///
/// Hot-path cost per window: ~11 steady_clock reads (one per stage
/// boundary), one 80-byte slot write, 8 histogram observes, and one
/// short mutex for the P² latency sketch.
class FlightRecorder {
 public:
  /// Publishes detector/stage/<stage>_ms + detector/window_total_ms
  /// histograms and flight/* counters into `registry` (DefaultMetrics()
  /// when null).
  explicit FlightRecorder(FlightOptions options = {},
                          MetricsRegistry* registry = nullptr);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Opens a trace for the current thread (replacing any unfinished one).
  /// No-op while the recorder is disabled. `session_hash` conventionally
  /// comes from CurrentFlightSession().
  void Begin(uint64_t session_hash, int position);
  /// Completes the current thread's trace: stamps the worst verdict,
  /// decides promotion, pushes the ring slot, and observes the stage/total
  /// histograms. No-op when no trace is active.
  void End(int rank, float score, float margin, bool abnormal);
  /// Drops the current thread's trace without recording (error paths).
  void Abandon();

  /// Validated copies of every committed ring record, seq-ascending.
  /// Concurrent writers may wrap slots mid-read; torn slots are skipped.
  std::vector<WindowTrace> Snapshot() const;
  /// Validated copies of the promoted detail ring, seq-ascending.
  std::vector<WindowTrace> Retained() const;

  uint64_t RecordsTotal() const;
  uint64_t PromotedTotal() const;
  uint64_t DroppedTotal() const;
  /// Current "slow window" promotion threshold, ms (0 until warmup).
  double SlowThresholdMs() const;

  /// Writes the binary dump (header + raw ring slots + retained ring) to
  /// `fd` using only write(2) — async-signal-safe, so the fatal-signal
  /// handler shares this path. `signal` is recorded in the header (0 for
  /// a normal dump).
  util::Status WriteDump(int fd, uint32_t signal = 0) const;
  util::Status WriteDumpFile(const std::string& path) const;

  /// Drops all ring/retained records and the latency sketch (counters and
  /// published histograms keep their registry semantics). Test isolation.
  void Reset();

  const FlightOptions& options() const { return options_; }

  /// The process-wide recorder the detector records into. Constructed on
  /// first use; never destroyed.
  static FlightRecorder& Default();

 private:
  struct Lane;
  friend void FlightStageBoundary(FlightStage stage);

  Lane* AcquireLane();
  void Promote(const WindowTrace& trace);
  void CollectRing(const Lane& lane, std::vector<WindowTrace>* out) const;

  const FlightOptions options_;
  const uint64_t instance_id_;
  MetricsRegistry* registry_;

  std::mutex lane_mu_;  // serializes lane allocation only
  std::unique_ptr<std::atomic<Lane*>[]> lanes_;  // options_.max_lanes slots
  std::atomic<int> lane_count_{0};

  std::mutex retain_mu_;  // serializes retained-ring writers
  std::unique_ptr<Lane> retained_;

  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> promoted_{0};
  std::atomic<double> slow_threshold_ms_{0.0};

  std::mutex sketch_mu_;
  std::unique_ptr<class P2Quantile> slow_sketch_;

  // Cached registry instruments (stable pointers).
  Histogram* h_stage_[kFlightStageCount];
  Histogram* h_total_;
  Counter* c_records_;
  Counter* c_promoted_;
  Counter* c_dropped_;
};

/// Attributes the time since the previous boundary (or Begin) to `stage`
/// on the current thread's open trace; no-op when none is active, so
/// instrumented kernels cost one thread-local load outside a trace.
void FlightStageBoundary(FlightStage stage);

/// Begin/End on the default recorder, stamping CurrentFlightSession().
void FlightBegin(int position);
void FlightEnd(int rank, float score, float margin, bool abnormal);

/// Recording is on by default; disabling reduces Begin (and with it every
/// boundary) to a relaxed atomic load. Open traces are abandoned.
void SetFlightRecorderEnabled(bool enabled);
bool FlightRecorderEnabled();

namespace internal {
extern std::atomic<bool> g_flight_enabled;
}

inline bool FlightRecorderEnabled() {
  return internal::g_flight_enabled.load(std::memory_order_relaxed);
}

/// RAII session identity for traces recorded while in scope (process-wide;
/// the CLI scores sessions sequentially, so one scope at a time). Stores
/// Fnv1aHash64(session_id); nesting restores the outer value.
class FlightSessionScope {
 public:
  explicit FlightSessionScope(const std::string& session_id);
  explicit FlightSessionScope(uint64_t session_hash);
  ~FlightSessionScope();
  FlightSessionScope(const FlightSessionScope&) = delete;
  FlightSessionScope& operator=(const FlightSessionScope&) = delete;

 private:
  uint64_t previous_;
};

/// Session hash traces opened now would carry (0 = no scope active).
uint64_t CurrentFlightSession();

// ---------------------------------------------------------------------------
// Crash forensics
// ---------------------------------------------------------------------------

/// Installs a SIGSEGV/SIGABRT/SIGBUS handler that writes, into `dump_dir`
/// (created if missing):
///
///   crash-<pid>.flight         binary ring dump (ReadFlightDumpFile)
///   crash-<pid>.manifest.json  `manifest_text`, captured at install time
///   crash-<pid>.metrics.jsonl  metrics snapshot, refreshed every few
///                              thousand windows (may lag the crash)
///
/// then restores the default disposition and re-raises, so exit status and
/// core-dump behavior are unchanged. The handler touches only
/// pre-rendered buffers and the lock-free rings (async-signal-safe).
/// Idempotent per process; the second call just updates dir + manifest.
util::Status InstallFlightCrashHandler(const std::string& dump_dir,
                                       const std::string& manifest_text);
/// Restores the signal dispositions saved by Install (test hygiene).
void UninstallFlightCrashHandler();
/// Re-renders the pre-serialized metrics snapshot the crash handler
/// writes. Called automatically every few thousand End()s while the
/// handler is installed; exposed for tests and pre-crash checkpoints.
void RefreshCrashMetricsSnapshot();

/// Parsed flight dump.
struct FlightDump {
  uint32_t version = 0;
  /// Signal that triggered the dump (0 = manual WriteDump).
  uint32_t signal = 0;
  uint32_t stage_count = 0;
  uint64_t records_total = 0;
  uint64_t promoted_total = 0;
  uint64_t dropped_total = 0;
  double slow_threshold_ms = 0.0;
  /// Committed ring records, seq-ascending (the last N windows).
  std::vector<WindowTrace> records;
  /// Promoted detail-ring records, seq-ascending.
  std::vector<WindowTrace> retained;
};

util::Result<FlightDump> ReadFlightDumpFile(const std::string& path);

}  // namespace ucad::obs

#endif  // UCAD_OBS_FLIGHT_H_
