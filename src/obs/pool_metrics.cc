#include "obs/pool_metrics.h"

#include <string>

#include "util/thread_pool.h"

namespace ucad::obs {

void PublishThreadPoolMetrics(MetricsRegistry* registry) {
  MetricsRegistry& reg = registry != nullptr ? *registry : DefaultMetrics();
  const util::ThreadPoolStats stats = util::GlobalThreadPool().Stats();
  reg.GetGauge("pool/num_threads")
      ->Set(static_cast<double>(util::NumThreads()));
  Counter* tasks = reg.GetCounter("pool/tasks_total");
  if (stats.tasks_total > tasks->Value()) {
    tasks->Increment(stats.tasks_total - tasks->Value());
  }
  reg.GetGauge("pool/queue_depth")
      ->Set(static_cast<double>(stats.queue_depth));
  reg.GetGauge("pool/max_queue_depth")
      ->Set(static_cast<double>(stats.max_queue_depth));
  for (size_t i = 0; i < stats.worker_busy_ns.size(); ++i) {
    reg.GetGauge("pool/worker_busy_ms", {{"worker", std::to_string(i)}})
        ->Set(static_cast<double>(stats.worker_busy_ns[i]) / 1e6);
  }
}

}  // namespace ucad::obs
