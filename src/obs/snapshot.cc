#include "obs/snapshot.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ucad::obs {

namespace {

/// Recursive-descent JSON parser over a string view of the input.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  util::Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    UCAD_RETURN_IF_ERROR(ParseValue(&v));
    SkipWs();
    if (pos_ != s_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  util::Status ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return Error("unexpected end of input");
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", out, JsonValue::Type::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Type::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Type::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  util::Status ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return util::Status::Ok();
    }
    while (true) {
      SkipWs();
      std::string key;
      UCAD_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (Peek() != ':') return Error("expected ':' in object");
      ++pos_;
      SkipWs();
      JsonValue value;
      UCAD_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return util::Status::Ok();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  util::Status ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return util::Status::Ok();
    }
    while (true) {
      SkipWs();
      JsonValue value;
      UCAD_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return util::Status::Ok();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  util::Status ParseString(std::string* out) {
    if (Peek() != '"') return Error("expected string");
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return util::Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return Error("unterminated escape");
        const char esc = s_[pos_];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return Error("short \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = s_[pos_ + i];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return Error("bad \\u escape");
              }
              code = code * 16 +
                     (std::isdigit(static_cast<unsigned char>(h))
                          ? h - '0'
                          : std::tolower(h) - 'a' + 10);
            }
            pos_ += 4;
            // Metrics names are ASCII; map non-ASCII escapes to '?' rather
            // than implementing full UTF-8 encoding.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Error("unknown escape");
        }
        ++pos_;
      } else {
        *out += c;
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  util::Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return util::Status::Ok();
  }

  util::Status ParseLiteral(const std::string& lit, JsonValue* out,
                            JsonValue::Type type, bool bool_value) {
    if (s_.compare(pos_, lit.size(), lit) != 0) {
      return Error("bad literal");
    }
    pos_ += lit.size();
    out->type = type;
    out->bool_value = bool_value;
    return util::Status::Ok();
  }

  util::Status Error(const std::string& what) const {
    return util::Status::InvalidArgument(
        what + " at offset " + std::to_string(pos_));
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// "name{k=v,k2=v2}" series key from a parsed metric object.
std::string SeriesKey(const JsonValue& metric) {
  const JsonValue* name = metric.Find("name");
  std::string key =
      name != nullptr && name->type == JsonValue::Type::kString
          ? name->string_value
          : "?";
  const JsonValue* labels = metric.Find("labels");
  if (labels != nullptr && !labels->object.empty()) {
    key += "{";
    for (size_t i = 0; i < labels->object.size(); ++i) {
      if (i > 0) key += ",";
      key += labels->object[i].first + "=" +
             labels->object[i].second.string_value;
    }
    key += "}";
  }
  return key;
}

util::Status AddMetricObject(const JsonValue& obj, Snapshot* out) {
  if (obj.type != JsonValue::Type::kObject) {
    return util::Status::InvalidArgument("metric entry is not an object");
  }
  MetricSample sample;
  const JsonValue* name = obj.Find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString) {
    return util::Status::InvalidArgument("metric entry lacks a name");
  }
  sample.name = name->string_value;
  sample.series = SeriesKey(obj);
  const JsonValue* type = obj.Find("type");
  sample.type = type != nullptr ? type->string_value : "";
  auto num = [&obj](const char* key) {
    const JsonValue* v = obj.Find(key);
    return v != nullptr ? v->NumberOr(0.0) : 0.0;
  };
  sample.value = num("value");
  sample.count = num("count");
  sample.sum = num("sum");
  sample.min = num("min");
  sample.max = num("max");
  sample.mean = num("mean");
  sample.p50 = num("p50");
  sample.p90 = num("p90");
  sample.p99 = num("p99");
  (*out)[sample.series] = std::move(sample);
  return util::Status::Ok();
}

std::string FormatStat(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(double fallback) const {
  return type == Type::kNumber ? number : fallback;
}

util::Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

double MetricSample::Statistic() const {
  return type == "histogram" ? min : value;
}

util::Result<Snapshot> ParseSnapshot(const std::string& text) {
  Snapshot out;
  // A run manifest is a single JSON object with a "metrics" array; a JSONL
  // snapshot is one object per line. Distinguish by trying the whole
  // document first.
  util::Result<JsonValue> whole = ParseJson(text);
  if (whole.ok() && whole->type == JsonValue::Type::kObject &&
      whole->Find("metrics") != nullptr) {
    const JsonValue* metrics = whole->Find("metrics");
    if (metrics->type != JsonValue::Type::kArray) {
      return util::Status::InvalidArgument("manifest 'metrics' is not an array");
    }
    for (const JsonValue& m : metrics->array) {
      UCAD_RETURN_IF_ERROR(AddMetricObject(m, &out));
    }
    return out;
  }
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    util::Result<JsonValue> obj = ParseJson(line);
    if (!obj.ok()) {
      return util::Status::InvalidArgument(
          "line " + std::to_string(lineno) + ": " + obj.status().message());
    }
    UCAD_RETURN_IF_ERROR(AddMetricObject(*obj, &out));
  }
  return out;
}

util::Result<Snapshot> LoadSnapshotFile(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return util::Status::NotFound("cannot open snapshot: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  util::Result<Snapshot> snap = ParseSnapshot(buffer.str());
  if (!snap.ok()) {
    return util::Status::InvalidArgument(path + ": " +
                                         snap.status().message());
  }
  return snap;
}

MetricClass ClassifyMetric(const std::string& name, const std::string& type) {
  auto ends_with = [&name](const char* suffix) {
    const size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  if (ends_with("_ms") || ends_with("_us") || ends_with("_ns") ||
      ends_with("_seconds") || ends_with("_sec") ||
      name.find("latency") != std::string::npos) {
    return MetricClass::kTiming;
  }
  if (type == "counter") return MetricClass::kCount;
  return MetricClass::kOther;
}

Snapshot MergeMinOfN(const std::vector<Snapshot>& runs) {
  Snapshot merged;
  for (const Snapshot& run : runs) {
    for (const auto& [series, sample] : run) {
      auto it = merged.find(series);
      if (it == merged.end()) {
        merged.emplace(series, sample);
        continue;
      }
      if (ClassifyMetric(sample.name, sample.type) == MetricClass::kTiming &&
          sample.Statistic() < it->second.Statistic()) {
        it->second = sample;
      }
    }
  }
  return merged;
}

Snapshot SubtractSnapshots(const Snapshot& later, const Snapshot& earlier) {
  Snapshot delta;
  for (const auto& [series, late] : later) {
    MetricSample d = late;
    const auto it = earlier.find(series);
    if (it != earlier.end()) {
      const MetricSample& early = it->second;
      if (d.type == "counter") {
        d.value = late.value >= early.value ? late.value - early.value : 0.0;
      } else if (d.type == "histogram") {
        if (late.count < early.count) {
          // Restart clamp: the earlier baseline belongs to a previous
          // process lifetime — empty, never negative.
          d.count = d.sum = 0.0;
        } else {
          d.count = late.count - early.count;
          d.sum = late.sum >= early.sum ? late.sum - early.sum : 0.0;
        }
        // Distribution stats cannot be subtracted from summaries.
        d.min = d.max = d.mean = d.p50 = d.p90 = d.p99 = 0.0;
        if (d.count > 0.0 && d.sum > 0.0) d.mean = d.sum / d.count;
      }
      // Gauges keep the later instantaneous value.
    }
    delta[series] = std::move(d);
  }
  return delta;
}

CompareReport CompareSnapshots(const Snapshot& baseline,
                               const Snapshot& candidate,
                               const CompareOptions& options) {
  CompareReport report;
  for (const auto& [series, base] : baseline) {
    auto it = candidate.find(series);
    if (it == candidate.end()) {
      report.missing_in_candidate.push_back(series);
      continue;
    }
    const MetricSample& cand = it->second;
    ++report.compared;
    const double b = base.Statistic();
    const double c = cand.Statistic();
    MetricDiff diff{series, b, c, b != 0.0 ? (c - b) / b : 0.0};
    switch (ClassifyMetric(base.name, base.type)) {
      case MetricClass::kTiming: {
        // Timings are compared in the unit they were observed; apply the
        // millisecond floor scaled to that unit.
        double floor = options.abs_floor_ms;
        if (base.name.size() >= 8 &&
            base.name.compare(base.name.size() - 8, 8, "_seconds") == 0) {
          floor *= 1e-3;
        } else if (base.name.size() >= 3 &&
                   base.name.compare(base.name.size() - 3, 3, "_us") == 0) {
          floor *= 1e3;
        }
        if (c > b * (1.0 + options.rel_tolerance) && c - b > floor) {
          report.regressions.push_back(diff);
        } else if (c < b * (1.0 - options.rel_tolerance) && b - c > floor) {
          report.improvements.push_back(diff);
        }
        break;
      }
      case MetricClass::kCount:
        if (options.check_counters && b != c) {
          report.regressions.push_back(diff);
        }
        break;
      case MetricClass::kOther:
        break;
    }
  }
  for (const auto& [series, sample] : candidate) {
    (void)sample;
    if (baseline.find(series) == baseline.end()) {
      report.missing_in_baseline.push_back(series);
    }
  }
  return report;
}

std::string CompareReport::Format(const CompareOptions& options) const {
  std::ostringstream os;
  os << "compared " << compared << " series (tolerance +"
     << static_cast<int>(options.rel_tolerance * 100) << "%, floor "
     << options.abs_floor_ms << "ms)\n";
  for (const MetricDiff& d : regressions) {
    os << "  REGRESSION " << d.series << ": " << FormatStat(d.baseline)
       << " -> " << FormatStat(d.candidate) << " ("
       << (d.rel_change >= 0 ? "+" : "")
       << FormatStat(d.rel_change * 100.0) << "%)\n";
  }
  for (const MetricDiff& d : improvements) {
    os << "  improvement " << d.series << ": " << FormatStat(d.baseline)
       << " -> " << FormatStat(d.candidate) << " ("
       << FormatStat(d.rel_change * 100.0) << "%)\n";
  }
  for (const std::string& s : missing_in_candidate) {
    os << (options.fail_on_missing ? "  MISSING " : "  missing in candidate: ")
       << s << "\n";
  }
  for (const std::string& s : missing_in_baseline) {
    os << "  new in candidate: " << s << "\n";
  }
  if (regressions.empty() &&
      (missing_in_candidate.empty() || !options.fail_on_missing)) {
    os << "  no regressions\n";
  }
  return os.str();
}

}  // namespace ucad::obs
