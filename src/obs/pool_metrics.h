#ifndef UCAD_OBS_POOL_METRICS_H_
#define UCAD_OBS_POOL_METRICS_H_

#include "obs/metrics.h"

namespace ucad::obs {

/// Publishes the global thread pool's lifetime accounting into `registry`
/// (default registry when null):
///
///   pool/num_threads        gauge   (configured lane count)
///   pool/tasks_total        counter (chunks executed since process start)
///   pool/queue_depth        gauge   (jobs in flight at snapshot time)
///   pool/max_queue_depth    gauge   (high-water mark)
///   pool/worker_busy_ms{worker=i}  gauge per background worker
///
/// The pool lives in util (which obs links against, not the reverse), so
/// its hot path carries plain atomics and this translation runs only at
/// publication points: epoch ends, detection batches, bench/CLI exits.
void PublishThreadPoolMetrics(MetricsRegistry* registry = nullptr);

}  // namespace ucad::obs

#endif  // UCAD_OBS_POOL_METRICS_H_
