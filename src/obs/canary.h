#ifndef UCAD_OBS_CANARY_H_
#define UCAD_OBS_CANARY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sql/vocabulary.h"
#include "util/rng.h"
#include "workload/anomaly.h"
#include "workload/scenario.h"

namespace ucad::obs {

/// What a canary probe is built from and what verdict it must earn.
enum class ProbeClass {
  /// A plain generated session — must score clean.
  kNormal,
  /// CredentialStealing (A2) rare-template injection — must flag.
  kRareInjection,
  /// A normal session with one operation replaced by the model's own
  /// (top_p+1)-th expected candidate — a key the model itself considers
  /// plausible, sitting just OUTSIDE the top-p admission set. Stresses the
  /// cutoff with the hardest flag the detector is still required to make.
  kMimicry,
};
const char* ProbeClassName(ProbeClass cls);

/// Outcome of one probe.
struct ProbeResult {
  ProbeClass probe_class = ProbeClass::kNormal;
  bool expected_abnormal = false;
  bool flagged = false;
  double latency_ms = 0.0;
  /// True when the verdict matched the expectation.
  bool Correct() const { return flagged == expected_abnormal; }
};

/// Scores a tokenized probe session through the detector's SHADOW path
/// (bitwise-identical scoring, observability side effects suppressed);
/// returns the session-level abnormal verdict. Injected by the caller so
/// obs never links the detector library (which links back into obs).
using CanaryScoreFn = std::function<bool(const std::vector<int>& keys)>;

/// The model's top-k expected keys at `position` of `keys`, best first
/// (the detector's ExplainOperation). Used to build mimicry probes; may be
/// null, which disables the mimicry class.
using CanaryExpectFn = std::function<std::vector<int>(
    const std::vector<int>& keys, int position, int top_k)>;

struct CanaryOptions {
  uint64_t seed = 0x5eed'c0de;
  /// The detector's top-p admission cutoff: the mimicry probe substitutes
  /// the (top_p+1)-th expected candidate, the best key still outside the
  /// admission set.
  int top_p = 5;
  /// Probes contributing to the rolling canary/hit_rate gauge.
  size_t hit_rate_window = 64;
};

/// Synthetic monitoring for an unsupervised detector: continuously score
/// probe sessions of KNOWN verdict through the real detection path and
/// count hits/misses, because once deployed there are no labels and
/// "recall right now" is otherwise unobservable. Probes are scored in
/// shadow mode — the injected score callback must keep them out of the
/// cumulative detector metrics, the PSI drift reference, the audit log,
/// and the incident aggregator, so canaries never contaminate the
/// statistics they are guarding.
///
/// Emits (under the registry passed in):
///   canary/probes_total{class=}     probes run per class
///   canary/true_flag_total          expected-abnormal probes that flagged
///   canary/missed_flag_total        expected-abnormal probes scored clean
///   canary/false_flag_total         known-normal probes that flagged
///   canary/clean_probes_total       known-normal probes run
///   canary/expected_flag_total      expected-abnormal probes run
///   canary/probe_latency_ms{class=} per-class probe scoring latency
///   canary/hit_rate                 rolling fraction of correct verdicts
///
/// Not thread-safe; drive it from one monitoring loop.
class CanaryEngine {
 public:
  /// `generator` and `vocabulary` must outlive the engine. `score` is
  /// required; `expect` may be null (disables kMimicry, RunRound then
  /// skips it).
  CanaryEngine(const workload::SessionGenerator* generator,
               const sql::Vocabulary* vocabulary, CanaryScoreFn score,
               CanaryExpectFn expect, CanaryOptions options = {},
               MetricsRegistry* registry = nullptr);

  /// Builds, scores, and accounts one probe of the given class.
  ProbeResult RunProbe(ProbeClass probe_class);

  /// One probe per available class (normal, rare-injection, mimicry when
  /// the expect callback is present). Returns the results.
  std::vector<ProbeResult> RunRound();

  uint64_t ProbesTotal() const { return probes_total_; }
  uint64_t TrueFlags() const { return true_flags_; }
  uint64_t MissedFlags() const { return missed_flags_; }
  uint64_t FalseFlags() const { return false_flags_; }
  /// Rolling fraction of correct verdicts over the last
  /// options.hit_rate_window probes (1.0 before any probe ran).
  double HitRate() const;

  const CanaryOptions& options() const { return options_; }

 private:
  /// Tokenized key sequence for a probe of the class, plus its expected
  /// verdict. Mimicry falls back to rare-injection when the expect
  /// callback cannot produce a candidate outside the admission set.
  std::vector<int> BuildProbe(ProbeClass probe_class, bool* expect_abnormal);

  const workload::SessionGenerator* generator_;
  const sql::Vocabulary* vocabulary_;
  CanaryScoreFn score_;
  CanaryExpectFn expect_;
  CanaryOptions options_;
  MetricsRegistry* registry_;
  workload::AnomalySynthesizer synthesizer_;
  util::Rng rng_;

  uint64_t probes_total_ = 0;
  uint64_t true_flags_ = 0;
  uint64_t missed_flags_ = 0;
  uint64_t false_flags_ = 0;
  std::deque<bool> recent_correct_;

  Counter* true_flag_counter_;
  Counter* missed_flag_counter_;
  Counter* false_flag_counter_;
  Counter* clean_probes_counter_;
  Counter* expected_flag_counter_;
  Gauge* hit_rate_gauge_;
};

}  // namespace ucad::obs

#endif  // UCAD_OBS_CANARY_H_
