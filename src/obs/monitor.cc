#include "obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace ucad::obs {

namespace internal {
std::atomic<bool> g_detection_monitor_enabled{false};
}  // namespace internal

// ---------------------------------------------------------------------------
// P² quantile
// ---------------------------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(q) {
  UCAD_CHECK(q > 0.0 && q < 1.0) << "P2 quantile must be in (0,1)";
  increment_[0] = 0.0;
  increment_[1] = q / 2.0;
  increment_[2] = q;
  increment_[3] = (1.0 + q) / 2.0;
  increment_[4] = 1.0;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = i + 1;
    desired_[i] = 0.0;
  }
}

void P2Quantile::Observe(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
    }
    return;
  }
  ++count_;
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];
  // Adjust the three interior markers toward their desired positions,
  // preferring the piecewise-parabolic (P²) height update and falling back
  // to linear interpolation when the parabola would break monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          s / span *
              ((positions_[i] - positions_[i - 1] + s) *
                   (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - s) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ >= 5) return heights_[2];
  // Exact small-sample quantile (nearest rank on the sorted prefix).
  double sorted[5];
  std::copy(heights_, heights_ + count_, sorted);
  std::sort(sorted, sorted + count_);
  const auto idx = static_cast<size_t>(
      std::lround(q_ * static_cast<double>(count_ - 1)));
  return sorted[idx];
}

// ---------------------------------------------------------------------------
// Rank buckets + PSI
// ---------------------------------------------------------------------------

const std::vector<int>& RankBuckets::UpperBounds() {
  static const std::vector<int>* bounds = new std::vector<int>{
      1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256};
  return *bounds;
}

size_t RankBuckets::Size() { return UpperBounds().size() + 1; }

size_t RankBuckets::BucketOf(int rank) {
  const std::vector<int>& bounds = UpperBounds();
  return std::lower_bound(bounds.begin(), bounds.end(), rank) -
         bounds.begin();  // == bounds.size() for the unbounded tail
}

std::string RankBuckets::LabelOf(size_t bucket) {
  const std::vector<int>& bounds = UpperBounds();
  if (bucket >= bounds.size()) {
    return ">" + std::to_string(bounds.back());
  }
  return "<=" + std::to_string(bounds[bucket]);
}

double PopulationStabilityIndex(const std::vector<uint64_t>& reference,
                                const std::vector<uint64_t>& live) {
  UCAD_CHECK_EQ(reference.size(), live.size());
  double ref_total = 0.0, live_total = 0.0;
  for (uint64_t c : reference) ref_total += static_cast<double>(c);
  for (uint64_t c : live) live_total += static_cast<double>(c);
  if (ref_total == 0.0 || live_total == 0.0) return 0.0;
  // Add-half smoothing keeps empty buckets finite without materially
  // shifting populated ones.
  const double bins = static_cast<double>(reference.size());
  double psi = 0.0;
  for (size_t i = 0; i < reference.size(); ++i) {
    const double p_ref = (static_cast<double>(reference[i]) + 0.5) /
                         (ref_total + 0.5 * bins);
    const double p_live =
        (static_cast<double>(live[i]) + 0.5) / (live_total + 0.5 * bins);
    psi += (p_live - p_ref) * std::log(p_live / p_ref);
  }
  return psi;
}

// ---------------------------------------------------------------------------
// DetectionMonitor
// ---------------------------------------------------------------------------

DetectionMonitor::DetectionMonitor(MonitorOptions options,
                                   MetricsRegistry* registry)
    : options_(options),
      registry_(registry != nullptr ? registry : &DefaultMetrics()),
      rank_p50_(0.5), rank_p90_(0.9), rank_p99_(0.99),
      score_p50_(0.5), score_p90_(0.9), score_p99_(0.99),
      latency_p50_(0.5), latency_p90_(0.9), latency_p99_(0.99),
      window_counts_(RankBuckets::Size(), 0) {
  UCAD_CHECK_GE(options_.window, 2);
  const char* qs[3] = {"p50", "p90", "p99"};
  for (int i = 0; i < 3; ++i) {
    g_rank_[i] = registry_->GetGauge(std::string("detector/rank/") + qs[i]);
    g_score_[i] = registry_->GetGauge(std::string("detector/score/") + qs[i]);
    g_latency_[i] =
        registry_->GetGauge(std::string("detector/latency/") + qs[i]);
  }
  g_psi_ = registry_->GetGauge("detector/drift/psi");
  g_reference_ready_ = registry_->GetGauge("detector/drift/reference_ready");
  c_operations_ = registry_->GetCounter("detector/monitor/operations_total");
  c_windows_ = registry_->GetCounter("detector/drift/windows_total");
  c_alerts_ = registry_->GetCounter("detector/drift/alerts_total");
}

void DetectionMonitor::PublishQuantilesLocked() {
  g_rank_[0]->Set(rank_p50_.Value());
  g_rank_[1]->Set(rank_p90_.Value());
  g_rank_[2]->Set(rank_p99_.Value());
  if (score_p50_.Count() > 0) {
    g_score_[0]->Set(score_p50_.Value());
    g_score_[1]->Set(score_p90_.Value());
    g_score_[2]->Set(score_p99_.Value());
  }
}

void DetectionMonitor::ObserveOperation(int rank, double score) {
  std::lock_guard<std::mutex> lock(mu_);
  rank_p50_.Observe(rank);
  rank_p90_.Observe(rank);
  rank_p99_.Observe(rank);
  if (std::isfinite(score)) {
    score_p50_.Observe(score);
    score_p90_.Observe(score);
    score_p99_.Observe(score);
  }
  ++window_counts_[RankBuckets::BucketOf(rank)];
  ++window_fill_;
  ++operations_;
  c_operations_->Increment();
  PublishQuantilesLocked();
  if (window_fill_ >= options_.window) CompleteWindowLocked();
}

void DetectionMonitor::CompleteWindowLocked() {
  ++windows_;
  c_windows_->Increment();
  if (reference_.empty() && options_.auto_reference) {
    // Self-calibration: the first window observed becomes the reference.
    reference_ = window_counts_;
    g_reference_ready_->Set(1.0);
  } else if (!reference_.empty()) {
    last_psi_ = PopulationStabilityIndex(reference_, window_counts_);
    g_psi_->Set(last_psi_);
    drift_alert_.store(last_psi_ > options_.psi_alert,
                       std::memory_order_relaxed);
    if (last_psi_ > options_.psi_alert) {
      ++alerts_;
      c_alerts_->Increment();
    }
  }
  std::fill(window_counts_.begin(), window_counts_.end(), 0);
  window_fill_ = 0;
}

void DetectionMonitor::ObserveLatency(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_p50_.Observe(ms);
  latency_p90_.Observe(ms);
  latency_p99_.Observe(ms);
  g_latency_[0]->Set(latency_p50_.Value());
  g_latency_[1]->Set(latency_p90_.Value());
  g_latency_[2]->Set(latency_p99_.Value());
}

void DetectionMonitor::SetReferenceRanks(const std::vector<int>& ranks) {
  std::lock_guard<std::mutex> lock(mu_);
  reference_.assign(RankBuckets::Size(), 0);
  for (int rank : ranks) ++reference_[RankBuckets::BucketOf(rank)];
  g_reference_ready_->Set(1.0);
}

bool DetectionMonitor::HasReference() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !reference_.empty();
}

double DetectionMonitor::LastPsi() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_psi_;
}

uint64_t DetectionMonitor::WindowsCompleted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_;
}

uint64_t DetectionMonitor::Alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

uint64_t DetectionMonitor::Operations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return operations_;
}

std::string DetectionMonitor::StatusLine() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ops=%llu windows=%llu rank_p50=%.1f rank_p99=%.1f "
                "psi=%.4f alerts=%llu%s",
                static_cast<unsigned long long>(operations_),
                static_cast<unsigned long long>(windows_),
                rank_p50_.Value(), rank_p99_.Value(), last_psi_,
                static_cast<unsigned long long>(alerts_),
                reference_.empty() ? " (calibrating)" : "");
  return buf;
}

void DetectionMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rank_p50_ = P2Quantile(0.5);
  rank_p90_ = P2Quantile(0.9);
  rank_p99_ = P2Quantile(0.99);
  score_p50_ = P2Quantile(0.5);
  score_p90_ = P2Quantile(0.9);
  score_p99_ = P2Quantile(0.99);
  latency_p50_ = P2Quantile(0.5);
  latency_p90_ = P2Quantile(0.9);
  latency_p99_ = P2Quantile(0.99);
  reference_.clear();
  std::fill(window_counts_.begin(), window_counts_.end(), 0);
  window_fill_ = 0;
  last_psi_ = 0.0;
  drift_alert_.store(false, std::memory_order_relaxed);
  windows_ = 0;
  alerts_ = 0;
  operations_ = 0;
  for (int i = 0; i < 3; ++i) {
    g_rank_[i]->Set(0.0);
    g_score_[i]->Set(0.0);
    g_latency_[i]->Set(0.0);
  }
  g_psi_->Set(0.0);
  g_reference_ready_->Set(0.0);
}

namespace {
MonitorOptions& DefaultMonitorOptions() {
  static MonitorOptions* options = new MonitorOptions();
  return *options;
}
}  // namespace

void SetDefaultMonitorOptions(const MonitorOptions& options) {
  DefaultMonitorOptions() = options;
}

DetectionMonitor& DefaultDetectionMonitor() {
  static DetectionMonitor* monitor =
      new DetectionMonitor(DefaultMonitorOptions());
  return *monitor;
}

void SetDetectionMonitorEnabled(bool enabled) {
  if (enabled) DefaultDetectionMonitor();  // register the series eagerly
  internal::g_detection_monitor_enabled.store(enabled,
                                              std::memory_order_relaxed);
}

}  // namespace ucad::obs
