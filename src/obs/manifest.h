#ifndef UCAD_OBS_MANIFEST_H_
#define UCAD_OBS_MANIFEST_H_

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ucad::obs {

/// Git SHA the binary was configured against ("unknown" outside a checkout).
/// Captured at CMake configure time, so it can lag an incremental rebuild.
std::string BuildGitSha();
/// CMAKE_BUILD_TYPE the binary was configured with.
std::string BuildType();
/// Compiler id + version string ("GNU 12.2.0").
std::string BuildCompiler();
/// Extra compile flags baked into the build ("-O3 -march=native ...").
std::string BuildFlags();

/// Process peak resident set size in bytes (getrusage ru_maxrss); 0 when
/// unavailable.
int64_t PeakRssBytes();
/// User + system CPU seconds consumed by the process so far.
double ProcessCpuSeconds();

/// FNV-1a 64-bit hash; used for stable config fingerprints.
uint64_t Fnv1aHash64(const std::string& s);

/// Seconds since this process started (steady clock, anchored by a
/// static initializer, so it is meaningful from main() onward).
double ProcessUptimeSeconds();

class MetricsRegistry;

/// Registers the self-identification series every scrape should carry:
///
///   obs/build_info{build_type=...,git_sha=...}  constant gauge, value 1
///   proc/uptime_seconds                         gauge, set at call time
///
/// Idempotent (the registry dedupes by name+labels); callers that serve
/// /metrics should refresh proc/uptime_seconds per scrape — the
/// MetricsHttpServer does this automatically.
void PublishBuildInfo(MetricsRegistry* registry);

/// Run manifest: one JSON document per run (conventionally run.json)
/// recording provenance (git SHA, build type/flags, config hash, seed,
/// command line), hardware info, resource usage (wall/cpu seconds, peak
/// RSS), and the final DefaultMetrics snapshot. Construct at process start
/// (the constructor anchors the wall clock), fill in fields, and call
/// WriteFile at exit — finish-time stats are captured at write time.
class RunManifest {
 public:
  RunManifest() : RunManifest("unknown") {}
  explicit RunManifest(std::string tool);

  RunManifest& SetTool(std::string tool);
  RunManifest& SetCommandLine(int argc, char** argv);
  RunManifest& SetCommandLine(std::vector<std::string> args);
  RunManifest& SetSeed(uint64_t seed);
  RunManifest& SetConfigHash(uint64_t hash);
  /// Convenience: SetConfigHash(Fnv1aHash64(config_text)).
  RunManifest& SetConfigText(const std::string& config_text);
  /// Free-form string extras rendered under "notes".
  RunManifest& AddNote(const std::string& key, const std::string& value);

  void Write(std::ostream& os) const;
  util::Status WriteFile(const std::string& path) const;

 private:
  std::string tool_;
  std::vector<std::string> argv_;
  bool has_seed_ = false;
  uint64_t seed_ = 0;
  bool has_config_hash_ = false;
  uint64_t config_hash_ = 0;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::chrono::steady_clock::time_point start_;
  int64_t start_unix_ms_ = 0;
};

}  // namespace ucad::obs

#endif  // UCAD_OBS_MANIFEST_H_
