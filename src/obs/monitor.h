#ifndef UCAD_OBS_MONITOR_H_
#define UCAD_OBS_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ucad::obs {

/// Online single-quantile estimator (Jain & Chlamtac's P² algorithm):
/// tracks an arbitrary quantile with five markers and O(1) memory — no
/// stored samples, no sort. Accuracy is within a few percent of the exact
/// empirical quantile for smooth distributions; the first five
/// observations are exact.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double q);

  void Observe(double value);
  /// Current estimate; exact while fewer than five observations.
  double Value() const;
  uint64_t Count() const { return count_; }

 private:
  double q_;
  uint64_t count_ = 0;
  double heights_[5];   // marker heights (q[i])
  double positions_[5]; // actual marker positions (n[i], 1-based)
  double desired_[5];   // desired marker positions (n'[i])
  double increment_[5]; // dn'[i] per observation
};

/// Histogram over detection ranks with fixed, log-spaced buckets shared by
/// the live window, the reference distribution, and audit-log replay, so
/// PSI is always computed bucket-by-bucket over the same partition.
/// Bucket i covers (upper_bound[i-1], upper_bound[i]]; the last bucket is
/// unbounded (unknown keys land there).
class RankBuckets {
 public:
  static const std::vector<int>& UpperBounds();
  static size_t Size();
  /// Index of the bucket holding `rank`.
  static size_t BucketOf(int rank);
  /// Human-readable bucket label ("<=4", ">256").
  static std::string LabelOf(size_t bucket);
};

/// Population Stability Index between a reference and a live bucket-count
/// vector (same length): sum over buckets of (p_i - q_i) * ln(p_i / q_i)
/// with add-half smoothing so empty buckets stay finite. Conventional
/// reading: < 0.1 stable, 0.1–0.25 moderate shift, > 0.25 significant
/// drift.
double PopulationStabilityIndex(const std::vector<uint64_t>& reference,
                                const std::vector<uint64_t>& live);

struct MonitorOptions {
  /// Scored operations per drift window. Each full window is compared
  /// against the reference, then discarded.
  int window = 256;
  /// PSI above this increments detector/drift/alerts_total.
  double psi_alert = 0.25;
  /// When no reference was set explicitly, adopt the first completed
  /// window as the reference ("self-calibrating" deployment).
  bool auto_reference = true;
};

/// Streaming detection monitor: per-operation rank/score quantile sketches
/// (P², no stored samples), per-session latency quantiles, and a windowed
/// rank-distribution drift detector (PSI against a training-time or
/// first-window reference). Publishes into a MetricsRegistry:
///
///   detector/rank/p50|p90|p99        gauges (P² estimates)
///   detector/score/p50|p90|p99       gauges
///   detector/latency/p50|p90|p99     gauges (ms, per session)
///   detector/monitor/operations_total counter
///   detector/drift/psi               gauge   (last completed window)
///   detector/drift/windows_total     counter
///   detector/drift/alerts_total      counter (windows with PSI > alert)
///   detector/drift/reference_ready   gauge   (0/1)
///
/// All series are registered at construction so a scrape endpoint exposes
/// them (at zero) before the first observation. Thread-safe.
class DetectionMonitor {
 public:
  explicit DetectionMonitor(MonitorOptions options = {},
                            MetricsRegistry* registry = nullptr);

  /// Feed one scored operation (rank >= 1; score ignored when non-finite).
  void ObserveOperation(int rank, double score);
  /// Feed one end-to-end session scoring latency.
  void ObserveLatency(double ms);

  /// Installs a training-time reference rank distribution (e.g. ranks of
  /// the training sessions under the trained model). Clears any
  /// auto-adopted reference.
  void SetReferenceRanks(const std::vector<int>& ranks);
  bool HasReference() const;

  double LastPsi() const;
  uint64_t WindowsCompleted() const;
  uint64_t Alerts() const;
  uint64_t Operations() const;

  /// True while the most recent completed drift window exceeded the PSI
  /// alert threshold. Lock-free (relaxed atomic), so hot-path consumers —
  /// the flight recorder's promotion decision — can poll it per window.
  bool DriftAlertActive() const {
    return drift_alert_.load(std::memory_order_relaxed);
  }

  /// One-line live status ("ops=512 rank_p50=1.0 psi=0.031 alerts=0"),
  /// for the CLI monitor mode.
  std::string StatusLine() const;

  /// Drops sketches, windows, reference, and zeroes the published gauges
  /// (counters keep their registry semantics). Test isolation.
  void Reset();

  const MonitorOptions& options() const { return options_; }

 private:
  void CompleteWindowLocked();
  void PublishQuantilesLocked();

  const MonitorOptions options_;
  MetricsRegistry* registry_;

  mutable std::mutex mu_;
  P2Quantile rank_p50_, rank_p90_, rank_p99_;
  P2Quantile score_p50_, score_p90_, score_p99_;
  P2Quantile latency_p50_, latency_p90_, latency_p99_;
  std::vector<uint64_t> reference_;
  std::vector<uint64_t> window_counts_;
  int window_fill_ = 0;
  double last_psi_ = 0.0;
  std::atomic<bool> drift_alert_{false};
  uint64_t windows_ = 0;
  uint64_t alerts_ = 0;
  uint64_t operations_ = 0;

  // Cached registry instruments (stable pointers).
  Gauge* g_rank_[3];
  Gauge* g_score_[3];
  Gauge* g_latency_[3];
  Gauge* g_psi_;
  Gauge* g_reference_ready_;
  Counter* c_operations_;
  Counter* c_windows_;
  Counter* c_alerts_;
};

/// Process-wide monitor fed by TransDasDetector when monitoring is
/// enabled; publishes into DefaultMetrics(). Constructed on first use (or
/// when SetDetectionMonitorEnabled(true) runs, so the drift series exist
/// from enable time).
DetectionMonitor& DefaultDetectionMonitor();

/// Options the default monitor is constructed with. Only effective before
/// its first use (e.g. CLI flag parsing); afterwards a no-op.
void SetDefaultMonitorOptions(const MonitorOptions& options);

/// Detection monitoring is off by default: the detector hot path then pays
/// a single relaxed atomic load. Enabling also instantiates the default
/// monitor (registering its series).
void SetDetectionMonitorEnabled(bool enabled);
bool DetectionMonitorEnabled();

namespace internal {
extern std::atomic<bool> g_detection_monitor_enabled;
}

inline bool DetectionMonitorEnabled() {
  return internal::g_detection_monitor_enabled.load(
      std::memory_order_relaxed);
}

}  // namespace ucad::obs

#endif  // UCAD_OBS_MONITOR_H_
