#include "obs/explain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace ucad::obs {

namespace {

/// Same float spelling the audit log uses: round-trip precision, non-finite
/// becomes null.
std::string FloatJson(float v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

}  // namespace

uint64_t IncidentSignature(const std::string& offending,
                           std::vector<std::string> context_templates) {
  // Sort the context set so attention-order jitter between windows of the
  // same incident cannot change the signature; join with a separator that
  // keeps ("ab","c") distinct from ("a","bc").
  std::sort(context_templates.begin(), context_templates.end());
  std::string canon = offending;
  for (const std::string& tmpl : context_templates) {
    canon += '\x1f';
    canon += tmpl;
  }
  return Fnv1aHash64(canon);
}

std::string SignatureHex(uint64_t signature) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(signature));
  return buf;
}

std::string ExplainBlockToJson(const ExplainBlock& block) {
  std::ostringstream os;
  os << "{\"signature\":\"" << SignatureHex(block.signature) << "\""
     << ",\"contrib\":[";
  for (size_t i = 0; i < block.contributions.size(); ++i) {
    const ExplainContribution& c = block.contributions[i];
    if (i > 0) os << ",";
    os << "{\"position\":" << c.position << ",\"key\":" << c.key;
    if (!c.tmpl.empty()) {
      os << ",\"template\":\"" << JsonEscape(c.tmpl) << "\"";
    }
    os << ",\"attention\":" << FloatJson(c.attention)
       << ",\"cf_rank\":" << c.cf_rank
       << ",\"cf_score\":" << FloatJson(c.cf_score) << "}";
  }
  os << "]}";
  return os.str();
}

util::Result<ExplainBlock> ParseExplainBlock(const JsonValue& value) {
  if (value.type != JsonValue::Type::kObject) {
    return util::Status::InvalidArgument("explain block is not a JSON object");
  }
  ExplainBlock block;
  const JsonValue* signature = value.Find("signature");
  if (signature != nullptr &&
      signature->type == JsonValue::Type::kString) {
    block.signature = std::strtoull(signature->string_value.c_str(),
                                    /*end=*/nullptr, /*base=*/16);
  }
  const JsonValue* contrib = value.Find("contrib");
  if (contrib != nullptr && contrib->type == JsonValue::Type::kArray) {
    for (const JsonValue& entry : contrib->array) {
      if (entry.type != JsonValue::Type::kObject) {
        return util::Status::InvalidArgument(
            "explain contribution is not a JSON object");
      }
      ExplainContribution c;
      auto number = [&entry](const char* name, double fallback) {
        const JsonValue* v = entry.Find(name);
        return v != nullptr ? v->NumberOr(fallback) : fallback;
      };
      c.position = static_cast<int>(number("position", 0));
      c.key = static_cast<int>(number("key", 0));
      const JsonValue* tmpl = entry.Find("template");
      if (tmpl != nullptr) c.tmpl = tmpl->string_value;
      c.attention = static_cast<float>(number("attention", 0));
      c.cf_rank = static_cast<int>(number("cf_rank", 0));
      c.cf_score = static_cast<float>(number("cf_score", 0));
      block.contributions.push_back(std::move(c));
    }
  }
  return block;
}

}  // namespace ucad::obs
