#include "obs/prom_text.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ucad::obs {

namespace {

bool LegalNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

/// Prometheus sample value: integers render bare, doubles with full
/// precision, non-finite values in Prometheus spelling (+Inf/-Inf/NaN).
std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Renders a label set as {k="v",...}; `extra` appends one more pair
/// (histograms' le). Empty label set with no extra renders as "".
std::string LabelBlock(const Labels& labels, const std::string& extra_name,
                       const std::string& extra_value) {
  if (labels.empty() && extra_name.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += PromLabelName(k) + "=\"" + PromLabelValue(v) + "\"";
  }
  if (!extra_name.empty()) {
    if (!first) out += ",";
    out += extra_name + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

/// OpenMetrics-style exemplar suffix for a _bucket line:
/// " # {k=\"v\",...} value timestamp_seconds". Plain Prometheus 0.0.4
/// scrapers that reject it should be pointed at a non-exemplar view; our
/// own consumers (CI smoke, flight_inspect cross-references) parse it.
std::string ExemplarSuffix(const Exemplar& ex) {
  std::string out = " # ";
  std::string labels = LabelBlock(ex.labels, "", "");
  out += labels.empty() ? "{}" : labels;
  out += " " + PromNumber(ex.value) + " " +
         PromNumber(static_cast<double>(ex.unix_ms) / 1e3);
  return out;
}

}  // namespace

std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out += LegalNameChar(c, out.empty()) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PromLabelName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool legal =
        std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        (!out.empty() && std::isdigit(static_cast<unsigned char>(c)));
    out += legal ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PromLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void WritePromText(const MetricsRegistry& registry, std::ostream& os) {
  // Registry order groups every label variant of one name contiguously,
  // so a TYPE line is emitted exactly once per name at its first series.
  std::string last_typed;
  registry.ForEachSeries([&os, &last_typed](
                             const MetricsRegistry::SeriesRef& series) {
    const std::string name = PromName(series.name);
    const char* type = series.counter != nullptr     ? "counter"
                       : series.gauge != nullptr     ? "gauge"
                       : series.histogram != nullptr ? "histogram"
                                                     : nullptr;
    if (type == nullptr) return;  // registered but never typed
    if (name != last_typed) {
      os << "# TYPE " << name << " " << type << "\n";
      last_typed = name;
    }
    if (series.counter != nullptr) {
      os << name << LabelBlock(series.labels, "", "") << " "
         << series.counter->Value() << "\n";
    } else if (series.gauge != nullptr) {
      os << name << LabelBlock(series.labels, "", "") << " "
         << PromNumber(series.gauge->Value()) << "\n";
    } else {
      const Histogram& h = *series.histogram;
      // Prometheus buckets are cumulative; ours are per-bucket counts.
      // Buckets with a recorded exemplar carry it as an OpenMetrics-style
      // " # {labels} value ts" suffix.
      Exemplar ex;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.BucketCount(i);
        os << name << "_bucket"
           << LabelBlock(series.labels, "le", PromNumber(h.bounds()[i]))
           << " " << cumulative;
        if (h.LatestExemplar(i, &ex)) os << ExemplarSuffix(ex);
        os << "\n";
      }
      os << name << "_bucket" << LabelBlock(series.labels, "le", "+Inf")
         << " " << h.Count();
      if (h.LatestExemplar(h.bounds().size(), &ex)) os << ExemplarSuffix(ex);
      os << "\n";
      os << name << "_sum" << LabelBlock(series.labels, "", "") << " "
         << PromNumber(h.Sum()) << "\n";
      os << name << "_count" << LabelBlock(series.labels, "", "") << " "
         << h.Count() << "\n";
    }
  });
}

std::string PromText(const MetricsRegistry& registry) {
  std::ostringstream os;
  WritePromText(registry, os);
  return os.str();
}

}  // namespace ucad::obs
