#include "obs/incident.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/explain.h"
#include "obs/metrics.h"

namespace ucad::obs {

IncidentAggregator::IncidentAggregator(IncidentOptions options)
    : options_(options) {}

bool IncidentAggregator::Observe(const AuditRecord& record) {
  if (!record.abnormal || !record.has_explain) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ++verdicts_total_;
  Incident& incident = incidents_[record.explain.signature];
  if (incident.count == 0) {
    incident.signature = record.explain.signature;
    incident.offending = !record.observed.empty()
                             ? record.observed
                             : "key:" + std::to_string(record.key);
    for (const ExplainContribution& c : record.explain.contributions) {
      incident.context.push_back(!c.tmpl.empty()
                                     ? c.tmpl
                                     : "key:" + std::to_string(c.key));
    }
    // Mirror the signature's canonical form (IncidentSignature sorts).
    std::sort(incident.context.begin(), incident.context.end());
    incident.first_seen_ms = record.wall_ms;
    incident.worst_rank = -1;
  }
  ++incident.count;
  if (record.wall_ms < incident.first_seen_ms) {
    incident.first_seen_ms = record.wall_ms;
  }
  incident.last_seen_ms = std::max(incident.last_seen_ms, record.wall_ms);
  if (record.rank > incident.worst_rank) {
    incident.worst_rank = record.rank;
    incident.worst_score = record.score;
    incident.exemplar_session = record.session_id;
    incident.exemplar_position = record.position;
  }
  return true;
}

std::vector<Incident> IncidentAggregator::Snapshot() const {
  std::vector<Incident> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(incidents_.size());
    for (const auto& [signature, incident] : incidents_) {
      out.push_back(incident);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Incident& a, const Incident& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.first_seen_ms < b.first_seen_ms;
                   });
  return out;
}

uint64_t IncidentAggregator::VerdictsTotal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return verdicts_total_;
}

uint64_t IncidentAggregator::IncidentsTotal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incidents_.size();
}

uint64_t IncidentAggregator::OpenIncidents(int64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.open_window_ms == 0) return incidents_.size();
  uint64_t open = 0;
  for (const auto& [signature, incident] : incidents_) {
    if (now_ms - incident.last_seen_ms <= options_.open_window_ms) ++open;
  }
  return open;
}

void IncidentAggregator::PublishMetrics(MetricsRegistry* registry,
                                        int64_t now_ms) const {
  registry->GetGauge("detector/incidents_total")
      ->Set(static_cast<double>(IncidentsTotal()));
  registry->GetGauge("detector/incidents_open")
      ->Set(static_cast<double>(OpenIncidents(now_ms)));
  registry->GetGauge("detector/incident_verdicts_total")
      ->Set(static_cast<double>(VerdictsTotal()));
  std::vector<Incident> top = Snapshot();
  if (static_cast<int>(top.size()) > options_.top_n) {
    top.resize(static_cast<size_t>(options_.top_n));
  }
  for (const Incident& incident : top) {
    const Labels labels = {{"signature", SignatureHex(incident.signature)},
                           {"offending", incident.offending}};
    registry->GetGauge("detector/incident/count", labels)
        ->Set(static_cast<double>(incident.count));
    registry->GetGauge("detector/incident/worst_rank", labels)
        ->Set(static_cast<double>(incident.worst_rank));
    registry->GetGauge("detector/incident/last_seen_ms", labels)
        ->Set(static_cast<double>(incident.last_seen_ms));
  }
}

std::string FormatIncidentTable(const std::vector<Incident>& incidents,
                                int top_n) {
  if (incidents.empty()) return "";
  std::ostringstream os;
  os << "  signature         count  worst_rank  exemplar          offending\n";
  int shown = 0;
  for (const Incident& incident : incidents) {
    if (top_n > 0 && shown >= top_n) break;
    ++shown;
    char line[128];
    std::snprintf(line, sizeof(line), "  %-16s %6llu  %10d  ",
                  SignatureHex(incident.signature).c_str(),
                  static_cast<unsigned long long>(incident.count),
                  incident.worst_rank);
    os << line;
    std::string exemplar = incident.exemplar_session + "@" +
                           std::to_string(incident.exemplar_position);
    std::snprintf(line, sizeof(line), "%-16s  ", exemplar.c_str());
    os << line << incident.offending << "\n";
  }
  if (top_n > 0 && static_cast<int>(incidents.size()) > top_n) {
    os << "  ... " << (incidents.size() - static_cast<size_t>(top_n))
       << " more incident(s)\n";
  }
  return os.str();
}

}  // namespace ucad::obs
