#ifndef UCAD_OBS_TRACE_H_
#define UCAD_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "util/status.h"

namespace ucad::obs {

/// Tracing is off by default; spans then cost one relaxed atomic load.
/// Enable at startup (e.g. from a --trace-out flag) before the traced
/// region runs.
void SetTraceEnabled(bool enabled);
bool TraceEnabled();

namespace internal {
extern std::atomic<bool> g_trace_enabled;

/// Records one completed span (Chrome trace_event "X" phase). `name` must
/// outlive the process trace buffer — pass string literals.
void RecordSpan(const char* name, int64_t start_us, int64_t dur_us);

/// Microseconds on the steady clock, relative to process trace epoch.
int64_t TraceNowUs();
}  // namespace internal

inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// RAII wall-clock span: records [construction, destruction) under `name`
/// on the current thread. Spans nest naturally (epoch > step > backward)
/// and render as a flame graph in chrome://tracing / Perfetto. `name` must
/// be a string literal (it is stored by pointer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      start_us_ = internal::TraceNowUs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_us_,
                           internal::TraceNowUs() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null when tracing was off at entry
  int64_t start_us_ = 0;
};

/// Manually record a completed span (for events timed by other means).
void RecordTraceSpan(const char* name, int64_t start_us, int64_t dur_us);

/// Number of spans currently buffered.
size_t TraceEventCount();

/// Discards all buffered spans.
void ClearTrace();

/// Writes the buffered spans as Chrome trace_event JSON
/// ({"traceEvents":[...]}), loadable in chrome://tracing and Perfetto.
void WriteChromeTrace(std::ostream& os);
util::Status WriteChromeTraceFile(const std::string& path);

}  // namespace ucad::obs

/// Opens a named RAII span covering the rest of the enclosing scope:
///   UCAD_TRACE_SPAN("trainer/epoch");
#define UCAD_TRACE_SPAN(name) \
  ::ucad::obs::TraceSpan UCAD_TRACE_CONCAT_(_ucad_trace_span_, __LINE__)(name)
#define UCAD_TRACE_CONCAT_(a, b) UCAD_TRACE_CONCAT2_(a, b)
#define UCAD_TRACE_CONCAT2_(a, b) a##b

#endif  // UCAD_OBS_TRACE_H_
