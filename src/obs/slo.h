#ifndef UCAD_OBS_SLO_H_
#define UCAD_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ucad::obs {

/// How an SLO reads its measurement out of the time-series store.
enum class SloSignal {
  /// Max of a gauge over the window vs a ceiling (PSI drift).
  kGauge,
  /// Gauge must stay inside [floor, ceiling] (anomaly-rate band: both a
  /// detector that flags everything and one that has gone silent are
  /// failure modes).
  kGaugeBand,
  /// Windowed rate of a numerator counter over a denominator counter vs a
  /// ratio ceiling (canary miss ratio, audit-drop budget).
  kCounterRatio,
  /// Windowed histogram-delta p99 vs a latency ceiling.
  kHistogramP99,
};

/// One declarative service-level objective over metric series.
struct SloSpec {
  std::string name;         ///< stable slug, becomes the {slo=} label
  SloSignal signal = SloSignal::kGauge;
  std::string series;       ///< measured series ("name{k=v,...}" key)
  std::string denominator;  ///< kCounterRatio only
  double ceiling = 0.0;
  double floor = 0.0;       ///< kGaugeBand only
  /// Multi-window burn: the objective is breached only when BOTH windows
  /// burn above 1 — the fast window gives detection latency, the slow
  /// window rides out blips (a one-tick p99 spike alone never degrades).
  int64_t fast_window_ms = 60 * 1000;
  int64_t slow_window_ms = 300 * 1000;
  /// Breach escalates from degraded to unhealthy when both burns reach
  /// this multiple of the objective.
  double unhealthy_factor = 2.0;
  std::string description;
};

enum class HealthGrade { kOk = 0, kDegraded = 1, kUnhealthy = 2 };
const char* HealthGradeName(HealthGrade grade);

/// Evaluation of one SLO at one instant.
struct SloStatus {
  std::string name;
  HealthGrade grade = HealthGrade::kOk;
  /// Measured value over the fast window (ratio, p99 ms, gauge max...).
  double measured = 0.0;
  /// Burn = measured / objective (>1 means out of budget). A window with
  /// no data burns 0: absence of evidence never degrades health.
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  std::string reason;  ///< human-readable, non-empty when breached
};

/// Rolled-up health: the worst per-SLO grade wins.
struct HealthReport {
  HealthGrade grade = HealthGrade::kOk;
  std::vector<SloStatus> slos;
  int64_t evaluated_unix_ms = 0;

  /// Text form served by /healthz: first line is the grade, then one line
  /// per breached SLO ("slo <name>: <reason>"), then "slo ok: N/M".
  std::string ToText() const;
  /// JSON form for dashboards: grade plus every SLO's burns.
  std::string ToJson() const;
};

/// Evaluates a set of SLO specs against a TimeSeriesStore and mirrors the
/// result into `slo/status` (0 ok / 1 degraded / 2 unhealthy),
/// `slo/burn_rate{slo=}` and `slo/ok{slo=}` gauges so scrapes and the
/// /history endpoint see the same health the /healthz endpoint reports.
class SloEvaluator {
 public:
  SloEvaluator(std::vector<SloSpec> specs, const TimeSeriesStore* store,
               MetricsRegistry* registry = nullptr);

  /// Pure evaluation at the store's newest tick; no gauges touched.
  HealthReport Evaluate() const;
  /// Evaluate + publish the slo/* gauges.
  HealthReport EvaluateAndPublish();

  const std::vector<SloSpec>& specs() const { return specs_; }

 private:
  SloStatus EvaluateOne(const SloSpec& spec) const;
  /// Burn rate of `spec` over one window; false when the window has no
  /// data for the series. `measured` gets the window's raw measurement.
  bool WindowBurn(const SloSpec& spec, int64_t window_ms, double* burn,
                  double* measured) const;

  std::vector<SloSpec> specs_;
  const TimeSeriesStore* store_;
  MetricsRegistry* registry_;
};

/// The shipped objective set: score-latency p99 ceiling, anomaly-rate
/// band, PSI drift ceiling, canary miss/false-flag ratio ceilings, and
/// audit/flight drop budgets. Ceilings are deliberately forgiving — they
/// catch "detection is broken", not "detection is slightly worse".
std::vector<SloSpec> DefaultSloSpecs();

}  // namespace ucad::obs

#endif  // UCAD_OBS_SLO_H_
