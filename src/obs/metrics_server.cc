#include "obs/metrics_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/manifest.h"
#include "obs/prom_text.h"
#include "util/logging.h"

namespace ucad::obs {

namespace {

/// Writes the whole buffer, retrying short writes and EINTR. Returns false
/// as soon as send() reports the peer is gone (0) or a hard error —
/// best-effort (a scraper hanging up mid-response is its problem, not
/// ours), but the loop must never spin on a dead socket.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Extracts the request path from an HTTP request line ("GET /metrics
/// HTTP/1.1"); empty when malformed or not a GET.
std::string RequestPath(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return "";
  const size_t start = 4;
  const size_t end = request.find(' ', start);
  if (end == std::string::npos) return "";
  return request.substr(start, end - start);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &DefaultMetrics()) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

util::Status MetricsHttpServer::Start(int port) {
  if (serving()) {
    return util::Status::FailedPrecondition("metrics server already running");
  }
  // Every scrape self-identifies: obs/build_info carries the binary's
  // provenance labels and proc/uptime_seconds is refreshed per scrape.
  PublishBuildInfo(registry_);
  uptime_gauge_ = registry_->GetGauge("proc/uptime_seconds");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("bind 127.0.0.1:" + std::to_string(port) +
                                  ": " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_.store(fd);
  thread_ = std::thread(&MetricsHttpServer::AcceptLoop, this);
  return util::Status::Ok();
}

void MetricsHttpServer::AcceptLoop() {
  while (true) {
    const int fd = listen_fd_.load();
    if (fd < 0) return;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // The listening socket was shut down by Stop() (or an unrecoverable
      // error): exit the thread either way.
      return;
    }
    HandleConnection(client);
    ::close(client);
  }
}

void MetricsHttpServer::HandleConnection(int client_fd) {
  // One read is enough for a scrape request line; we never need the body.
  char buf[2048];
  const ssize_t n = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string path = RequestPath(buf);
  requests_.fetch_add(1);
  if (MetricsEnabled()) {
    registry_->GetCounter("obs/http_requests_total", {{"path", path}})
        ->Increment();
  }
  if (path == "/metrics") {
    if (uptime_gauge_ != nullptr) uptime_gauge_->Set(ProcessUptimeSeconds());
    SendAll(client_fd,
            HttpResponse(200, "OK", "text/plain; version=0.0.4",
                         PromText(*registry_)));
  } else if (path == "/healthz") {
    SendAll(client_fd, HttpResponse(200, "OK", "text/plain", "ok\n"));
  } else if (path.empty()) {
    SendAll(client_fd,
            HttpResponse(400, "Bad Request", "text/plain", "bad request\n"));
  } else {
    SendAll(client_fd,
            HttpResponse(404, "Not Found", "text/plain", "not found\n"));
  }
}

void MetricsHttpServer::Stop() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // Unblocks the accept() so the thread exits; the fd is closed only
    // after the join so it cannot be recycled under the accept loop.
    ::shutdown(fd, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (fd >= 0) ::close(fd);
  port_ = 0;
}

}  // namespace ucad::obs
