#include "obs/metrics_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/manifest.h"
#include "obs/prom_text.h"
#include "util/logging.h"

namespace ucad::obs {

namespace {

/// Writes the whole buffer, retrying short writes and EINTR. Returns false
/// as soon as send() reports the peer is gone (0) or a hard error —
/// best-effort (a scraper hanging up mid-response is its problem, not
/// ours), but the loop must never spin on a dead socket.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Parsed request line ("GET /metrics HTTP/1.1"): method and path, split
/// so the handler can answer 405 (method known, not GET) distinctly from
/// 400 (no parseable request line at all).
struct RequestLine {
  std::string method;
  std::string path;
};

RequestLine ParseRequestLine(const std::string& request) {
  RequestLine line;
  const size_t method_end = request.find(' ');
  if (method_end == std::string::npos || method_end == 0) return line;
  const size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) return line;
  line.method = request.substr(0, method_end);
  line.path = request.substr(method_end + 1, path_end - method_end - 1);
  // Reject anything that is not a plausible HTTP token/path — a random
  // byte stream splitting on spaces should stay a 400, not a 405.
  for (const char c : line.method) {
    if (c < 'A' || c > 'Z') return RequestLine{};
  }
  if (line.path.empty() || line.path[0] != '/') return RequestLine{};
  return line;
}

/// Splits "/history?ticks=60&prefix=canary/" into the bare path and its
/// query parameters (unknown keys ignored; no %-decoding — our values are
/// digits and metric-name characters).
std::string SplitQuery(const std::string& path, size_t* ticks,
                       std::string* prefix) {
  const size_t q = path.find('?');
  if (q == std::string::npos) return path;
  std::string rest = path.substr(q + 1);
  size_t pos = 0;
  while (pos < rest.size()) {
    size_t amp = rest.find('&', pos);
    if (amp == std::string::npos) amp = rest.size();
    const std::string param = rest.substr(pos, amp - pos);
    const size_t eq = param.find('=');
    if (eq != std::string::npos) {
      const std::string key = param.substr(0, eq);
      const std::string value = param.substr(eq + 1);
      if (key == "ticks") {
        *ticks = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      } else if (key == "prefix") {
        *prefix = value;
      }
    }
    pos = amp + 1;
  }
  return path.substr(0, q);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &DefaultMetrics()) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::SetHealthHandler(HealthHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mu_);
  health_handler_ = std::move(handler);
}

void MetricsHttpServer::SetHistorySource(const TimeSeriesStore* store) {
  history_source_.store(store);
}

util::Status MetricsHttpServer::Start(int port) {
  if (serving()) {
    return util::Status::FailedPrecondition("metrics server already running");
  }
  // Every scrape self-identifies: obs/build_info carries the binary's
  // provenance labels and proc/uptime_seconds is refreshed per scrape.
  PublishBuildInfo(registry_);
  uptime_gauge_ = registry_->GetGauge("proc/uptime_seconds");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("bind 127.0.0.1:" + std::to_string(port) +
                                  ": " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_.store(fd);
  thread_ = std::thread(&MetricsHttpServer::AcceptLoop, this);
  return util::Status::Ok();
}

void MetricsHttpServer::AcceptLoop() {
  while (true) {
    const int fd = listen_fd_.load();
    if (fd < 0) return;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // The listening socket was shut down by Stop() (or an unrecoverable
      // error): exit the thread either way.
      return;
    }
    HandleConnection(client);
    ::close(client);
  }
}

void MetricsHttpServer::HandleConnection(int client_fd) {
  // One read is enough for a scrape request line; we never need the body.
  char buf[2048];
  const ssize_t n = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const RequestLine line = ParseRequestLine(buf);
  size_t history_ticks = 0;
  std::string history_prefix;
  const std::string path =
      SplitQuery(line.path, &history_ticks, &history_prefix);
  requests_.fetch_add(1);
  if (MetricsEnabled()) {
    registry_->GetCounter("obs/http_requests_total", {{"path", path}})
        ->Increment();
  }
  if (line.method.empty()) {
    SendAll(client_fd,
            HttpResponse(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  if (line.method != "GET") {
    // The scrape surface is read-only by design: every route answers the
    // same 405 so probes (HEAD, POST health pushes) fail loudly instead of
    // being misread as scrapes.
    std::string response =
        HttpResponse(405, "Method Not Allowed", "text/plain",
                     "method not allowed; this endpoint is GET-only\n");
    const size_t header_end = response.find("\r\n\r\n");
    response.insert(header_end, "\r\nAllow: GET");
    SendAll(client_fd, response);
    return;
  }
  if (path == "/metrics") {
    if (uptime_gauge_ != nullptr) uptime_gauge_->Set(ProcessUptimeSeconds());
    SendAll(client_fd,
            HttpResponse(200, "OK", "text/plain; version=0.0.4",
                         PromText(*registry_)));
  } else if (path == "/healthz") {
    HealthHandler handler;
    {
      std::lock_guard<std::mutex> lock(handler_mu_);
      handler = health_handler_;
    }
    if (handler == nullptr) {
      SendAll(client_fd, HttpResponse(200, "OK", "text/plain", "ok\n"));
    } else {
      const auto [code, body] = handler();
      SendAll(client_fd,
              HttpResponse(code, code >= 500 ? "Service Unavailable" : "OK",
                           "text/plain", body));
    }
  } else if (path == "/history") {
    const TimeSeriesStore* store = history_source_.load();
    if (store == nullptr) {
      SendAll(client_fd,
              HttpResponse(404, "Not Found", "text/plain",
                           "no time-series store attached\n"));
    } else {
      SendAll(client_fd,
              HttpResponse(200, "OK", "application/json",
                           store->HistoryJson(history_ticks, history_prefix)));
    }
  } else {
    SendAll(client_fd,
            HttpResponse(404, "Not Found", "text/plain",
                         "not found: " + path +
                             " (routes: /metrics /healthz /history)\n"));
  }
}

void MetricsHttpServer::Stop() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // Unblocks the accept() so the thread exits; the fd is closed only
    // after the join so it cannot be recycled under the accept loop.
    ::shutdown(fd, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (fd >= 0) ::close(fd);
  port_ = 0;
}

}  // namespace ucad::obs
