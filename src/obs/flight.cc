#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/manifest.h"
#include "obs/monitor.h"
#include "util/thread_pool.h"

namespace ucad::obs {

namespace internal {
std::atomic<bool> g_flight_enabled{true};
}  // namespace internal

void SetFlightRecorderEnabled(bool enabled) {
  internal::g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

const char* FlightStageName(int stage) {
  static constexpr const char* kNames[kFlightStageCount] = {
      "context_acquire", "embed", "attention", "ffn",
      "logits",          "score", "verdict"};
  return (stage >= 0 && stage < kFlightStageCount) ? kNames[stage]
                                                   : "unknown";
}

// ---------------------------------------------------------------------------
// Ring storage
// ---------------------------------------------------------------------------

/// One ring slot: the commit word is 0 while a write is in flight and the
/// trace's seq once committed, so lock-free readers (and the offline dump
/// parser) can reject torn slots by checking commit != 0 && commit == seq.
struct FlightSlot {
  std::atomic<uint64_t> commit{0};
  WindowTrace trace;
};
static_assert(sizeof(FlightSlot) == sizeof(uint64_t) + sizeof(WindowTrace),
              "dump format copies slots raw");

/// A power-of-two ring of slots with a single writer: the owning thread
/// for per-thread lanes, retain_mu_ holders for the retained ring. `next`
/// is therefore plain (never read cross-thread).
struct FlightRecorder::Lane {
  explicit Lane(size_t capacity)
      : mask(capacity - 1), slots(new FlightSlot[capacity]) {}
  const uint64_t mask;
  std::unique_ptr<FlightSlot[]> slots;
  uint64_t next = 0;

  void Push(const WindowTrace& trace) {
    FlightSlot& slot = slots[next & mask];
    slot.commit.store(0, std::memory_order_release);
    slot.trace = trace;
    slot.commit.store(trace.seq, std::memory_order_release);
    ++next;
  }
};

namespace {

size_t RoundUpPow2(int v) {
  size_t p = 2;
  while (p < static_cast<size_t>(v)) p <<= 1;
  return p;
}

FlightOptions SanitizeOptions(FlightOptions o) {
  o.lane_capacity = std::max(o.lane_capacity, 2);
  o.max_lanes = std::max(o.max_lanes, 1);
  o.retained_capacity = std::max(o.retained_capacity, 2);
  o.slow_quantile = std::clamp(o.slow_quantile, 0.01, 0.999);
  o.slow_warmup = std::max<uint64_t>(o.slow_warmup, 5);
  return o;
}

std::atomic<uint64_t> g_recorder_instances{1};
std::atomic<uint64_t> g_flight_session{0};

/// Per-thread trace under construction. One per thread, shared across
/// recorder instances: (owner, owner_id) detects a switch (or a recorder
/// recreated at the same address) and re-acquires the lane. `lane` is a
/// FlightRecorder::Lane*, typed void* because Lane is private.
struct ThreadScratch {
  const void* owner = nullptr;
  uint64_t owner_id = 0;
  void* lane = nullptr;
  bool active = false;
  WindowTrace trace;
  std::chrono::steady_clock::time_point begin;
  std::chrono::steady_clock::time_point last;
};
thread_local ThreadScratch t_flight;

float MsSince(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<float, std::milli>(to - from).count();
}

int64_t WallUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool WriteFully(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorder::FlightRecorder(FlightOptions options,
                               MetricsRegistry* registry)
    : options_(SanitizeOptions(options)),
      instance_id_(
          g_recorder_instances.fetch_add(1, std::memory_order_relaxed)),
      registry_(registry != nullptr ? registry : &DefaultMetrics()),
      lanes_(new std::atomic<Lane*>[options_.max_lanes]),
      retained_(new Lane(RoundUpPow2(options_.retained_capacity))),
      slow_sketch_(std::make_unique<P2Quantile>(options_.slow_quantile)) {
  for (int i = 0; i < options_.max_lanes; ++i) {
    lanes_[i].store(nullptr, std::memory_order_relaxed);
  }
  for (int i = 0; i < kFlightStageCount; ++i) {
    h_stage_[i] = registry_->GetHistogram(
        std::string("detector/stage/") + FlightStageName(i) + "_ms", {},
        Histogram::FineLatencyBounds());
  }
  h_total_ = registry_->GetHistogram("detector/window_total_ms", {},
                                     Histogram::FineLatencyBounds());
  c_records_ = registry_->GetCounter("flight/records_total");
  c_promoted_ = registry_->GetCounter("flight/promoted_total");
  c_dropped_ = registry_->GetCounter("flight/dropped_total");
}

FlightRecorder::~FlightRecorder() {
  const int count = lane_count_.load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) {
    delete lanes_[i].load(std::memory_order_relaxed);
  }
}

FlightRecorder::Lane* FlightRecorder::AcquireLane() {
  std::lock_guard<std::mutex> lock(lane_mu_);
  const int count = lane_count_.load(std::memory_order_relaxed);
  if (count >= options_.max_lanes) return nullptr;
  Lane* lane = new Lane(RoundUpPow2(options_.lane_capacity));
  lanes_[count].store(lane, std::memory_order_release);
  lane_count_.store(count + 1, std::memory_order_release);
  return lane;
}

void FlightRecorder::Begin(uint64_t session_hash, int position) {
  ThreadScratch& s = t_flight;
  if (!FlightRecorderEnabled()) {
    s.active = false;
    return;
  }
  if (s.owner != this || s.owner_id != instance_id_) {
    s.owner = this;
    s.owner_id = instance_id_;
    s.lane = AcquireLane();
  }
  s.trace = WindowTrace{};
  s.trace.session_hash = session_hash;
  s.trace.position = position;
  s.trace.queue_depth = static_cast<int32_t>(util::GlobalQueueDepth());
  s.active = true;
  s.begin = s.last = std::chrono::steady_clock::now();
}

void FlightStageBoundary(FlightStage stage) {
  ThreadScratch& s = t_flight;
  if (!s.active) return;
  const auto now = std::chrono::steady_clock::now();
  s.trace.stage_ms[static_cast<int>(stage)] += MsSince(s.last, now);
  s.last = now;
}

void FlightRecorder::Abandon() {
  ThreadScratch& s = t_flight;
  if (s.owner == this && s.owner_id == instance_id_) s.active = false;
}

void FlightRecorder::End(int rank, float score, float margin, bool abnormal) {
  ThreadScratch& s = t_flight;
  if (!s.active || s.owner != this || s.owner_id != instance_id_) return;
  s.active = false;
  const auto now = std::chrono::steady_clock::now();
  WindowTrace& t = s.trace;
  // Residual attribution: whatever ran since the last boundary (verdict
  // write, audit append) belongs to the verdict stage, so the stage times
  // sum to total_ms by construction.
  t.stage_ms[static_cast<int>(FlightStage::kVerdict)] += MsSince(s.last, now);
  t.total_ms = MsSince(s.begin, now);
  t.wall_ms = WallUnixMs();
  t.rank = rank;
  t.score = score;
  t.margin = margin;
  t.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;

  uint32_t flags = 0;
  if (abnormal) flags |= kFlightAbnormal;
  if (DetectionMonitorEnabled() &&
      DefaultDetectionMonitor().DriftAlertActive()) {
    flags |= kFlightDrift;
  }
  {
    std::lock_guard<std::mutex> lock(sketch_mu_);
    slow_sketch_->Observe(t.total_ms);
    if (slow_sketch_->Count() >= options_.slow_warmup) {
      const double threshold = slow_sketch_->Value();
      slow_threshold_ms_.store(threshold, std::memory_order_relaxed);
      if (t.total_ms >= threshold) flags |= kFlightSlow;
    }
  }
  t.flags = flags;

  if (MetricsEnabled()) {
    for (int i = 0; i < kFlightStageCount; ++i) {
      h_stage_[i]->Observe(t.stage_ms[i]);
    }
    h_total_->Observe(t.total_ms);
    c_records_->Increment();
  }

  if (s.lane != nullptr) {
    static_cast<Lane*>(s.lane)->Push(t);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsEnabled()) c_dropped_->Increment();
  }

  if (flags != 0) Promote(t);

  // Keep the crash handler's pre-rendered metrics snapshot loosely fresh
  // (free when no handler is installed).
  if ((t.seq & 0xFFF) == 0) RefreshCrashMetricsSnapshot();
}

void FlightRecorder::Promote(const WindowTrace& trace) {
  promoted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(retain_mu_);
    retained_->Push(trace);
  }
  if (!MetricsEnabled()) return;
  c_promoted_->Increment();
  char session[24];
  std::snprintf(session, sizeof(session), "s%016llx",
                static_cast<unsigned long long>(trace.session_hash));
  h_total_->RecordExemplar(
      trace.total_ms,
      {{"seq", std::to_string(trace.seq)},
       {"session", session},
       {"position", std::to_string(trace.position)}});
}

void FlightRecorder::CollectRing(const Lane& lane,
                                 std::vector<WindowTrace>* out) const {
  for (size_t i = 0; i <= lane.mask; ++i) {
    const FlightSlot& slot = lane.slots[i];
    const uint64_t before = slot.commit.load(std::memory_order_acquire);
    if (before == 0) continue;
    WindowTrace copy = slot.trace;
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t after = slot.commit.load(std::memory_order_relaxed);
    if (after != before || copy.seq != before) continue;  // torn: re-written
    out->push_back(copy);
  }
}

std::vector<WindowTrace> FlightRecorder::Snapshot() const {
  std::vector<WindowTrace> out;
  const int count = lane_count_.load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) {
    CollectRing(*lanes_[i].load(std::memory_order_acquire), &out);
  }
  std::sort(out.begin(), out.end(),
            [](const WindowTrace& a, const WindowTrace& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<WindowTrace> FlightRecorder::Retained() const {
  std::vector<WindowTrace> out;
  CollectRing(*retained_, &out);
  std::sort(out.begin(), out.end(),
            [](const WindowTrace& a, const WindowTrace& b) {
              return a.seq < b.seq;
            });
  return out;
}

uint64_t FlightRecorder::RecordsTotal() const {
  return seq_.load(std::memory_order_relaxed);
}
uint64_t FlightRecorder::PromotedTotal() const {
  return promoted_.load(std::memory_order_relaxed);
}
uint64_t FlightRecorder::DroppedTotal() const {
  return dropped_.load(std::memory_order_relaxed);
}
double FlightRecorder::SlowThresholdMs() const {
  return slow_threshold_ms_.load(std::memory_order_relaxed);
}

void FlightRecorder::Reset() {
  const int count = lane_count_.load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) {
    Lane* lane = lanes_[i].load(std::memory_order_acquire);
    for (size_t s = 0; s <= lane->mask; ++s) {
      lane->slots[s].commit.store(0, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(retain_mu_);
    for (size_t s = 0; s <= retained_->mask; ++s) {
      retained_->slots[s].commit.store(0, std::memory_order_relaxed);
    }
    retained_->next = 0;
  }
  {
    std::lock_guard<std::mutex> lock(sketch_mu_);
    slow_sketch_ = std::make_unique<P2Quantile>(options_.slow_quantile);
  }
  slow_threshold_ms_.store(0.0, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  promoted_.store(0, std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

// ---------------------------------------------------------------------------
// Free-function hot path + session scope
// ---------------------------------------------------------------------------

void FlightBegin(int position) {
  if (!FlightRecorderEnabled()) {
    t_flight.active = false;
    return;
  }
  FlightRecorder::Default().Begin(CurrentFlightSession(), position);
}

void FlightEnd(int rank, float score, float margin, bool abnormal) {
  if (!t_flight.active) return;
  FlightRecorder::Default().End(rank, score, margin, abnormal);
}

uint64_t CurrentFlightSession() {
  return g_flight_session.load(std::memory_order_relaxed);
}

FlightSessionScope::FlightSessionScope(const std::string& session_id)
    : FlightSessionScope(Fnv1aHash64(session_id)) {}

FlightSessionScope::FlightSessionScope(uint64_t session_hash)
    : previous_(g_flight_session.exchange(session_hash,
                                          std::memory_order_relaxed)) {}

FlightSessionScope::~FlightSessionScope() {
  g_flight_session.store(previous_, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Binary dump format
// ---------------------------------------------------------------------------

namespace {

constexpr char kDumpMagic[8] = {'U', 'C', 'A', 'D', 'F', 'L', 'T', '1'};

struct FlightDumpHeader {
  char magic[8];
  uint32_t version;
  uint32_t signal;
  uint32_t slot_bytes;
  uint32_t trace_bytes;
  uint32_t stage_count;
  uint32_t lane_capacity;  // power-of-two slots per lane
  uint32_t lane_count;
  uint32_t retained_capacity;
  uint64_t records_total;
  uint64_t promoted_total;
  uint64_t dropped_total;
  double slow_threshold_ms;
};
static_assert(std::is_trivially_copyable_v<FlightDumpHeader>);
static_assert(sizeof(FlightDumpHeader) == 72);

/// Parses one raw slot region of `count` slots, keeping committed ones.
void ParseSlots(const char* data, size_t count,
                std::vector<WindowTrace>* out) {
  for (size_t i = 0; i < count; ++i) {
    const char* slot = data + i * sizeof(FlightSlot);
    uint64_t commit = 0;
    std::memcpy(&commit, slot, sizeof(commit));
    if (commit == 0) continue;
    WindowTrace trace;
    std::memcpy(&trace, slot + sizeof(commit), sizeof(trace));
    if (trace.seq != commit) continue;  // torn at dump time
    out->push_back(trace);
  }
  std::sort(out->begin(), out->end(),
            [](const WindowTrace& a, const WindowTrace& b) {
              return a.seq < b.seq;
            });
}

}  // namespace

util::Status FlightRecorder::WriteDump(int fd, uint32_t signal) const {
  // Async-signal-safe: write(2) only, short-string Status messages (SSO),
  // raw memory copies of the slot arrays (torn slots are rejected by the
  // parser via the commit protocol).
  FlightDumpHeader header{};
  std::memcpy(header.magic, kDumpMagic, sizeof(kDumpMagic));
  header.version = 1;
  header.signal = signal;
  header.slot_bytes = static_cast<uint32_t>(sizeof(FlightSlot));
  header.trace_bytes = static_cast<uint32_t>(sizeof(WindowTrace));
  header.stage_count = static_cast<uint32_t>(kFlightStageCount);
  header.lane_capacity =
      static_cast<uint32_t>(RoundUpPow2(options_.lane_capacity));
  const int lane_count = lane_count_.load(std::memory_order_acquire);
  header.lane_count = static_cast<uint32_t>(lane_count);
  header.retained_capacity =
      static_cast<uint32_t>(retained_->mask + 1);
  header.records_total = RecordsTotal();
  header.promoted_total = PromotedTotal();
  header.dropped_total = DroppedTotal();
  header.slow_threshold_ms = SlowThresholdMs();
  if (!WriteFully(fd, &header, sizeof(header))) {
    return util::Status::Internal("write failed");
  }
  const size_t lane_bytes =
      sizeof(FlightSlot) * static_cast<size_t>(header.lane_capacity);
  for (int i = 0; i < lane_count; ++i) {
    const Lane* lane = lanes_[i].load(std::memory_order_acquire);
    if (!WriteFully(fd, lane->slots.get(), lane_bytes)) {
      return util::Status::Internal("write failed");
    }
  }
  const size_t retained_bytes =
      sizeof(FlightSlot) * static_cast<size_t>(header.retained_capacity);
  if (!WriteFully(fd, retained_->slots.get(), retained_bytes)) {
    return util::Status::Internal("write failed");
  }
  return util::Status::Ok();
}

util::Status FlightRecorder::WriteDumpFile(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::NotFound("cannot open flight dump output: " + path);
  }
  const util::Status status = WriteDump(fd, /*signal=*/0);
  ::close(fd);
  return status;
}

util::Result<FlightDump> ReadFlightDumpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return util::Status::NotFound("cannot open flight dump: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() < sizeof(FlightDumpHeader)) {
    return util::Status::InvalidArgument("flight dump truncated: " + path);
  }
  FlightDumpHeader header;
  std::memcpy(&header, data.data(), sizeof(header));
  if (std::memcmp(header.magic, kDumpMagic, sizeof(kDumpMagic)) != 0) {
    return util::Status::InvalidArgument("not a flight dump: " + path);
  }
  if (header.version != 1 || header.slot_bytes != sizeof(FlightSlot) ||
      header.trace_bytes != sizeof(WindowTrace) ||
      header.stage_count != static_cast<uint32_t>(kFlightStageCount)) {
    return util::Status::InvalidArgument(
        "flight dump layout mismatch (version/record size): " + path);
  }
  const size_t ring_slots = static_cast<size_t>(header.lane_count) *
                            static_cast<size_t>(header.lane_capacity);
  const size_t total_slots =
      ring_slots + static_cast<size_t>(header.retained_capacity);
  if (data.size() < sizeof(header) + total_slots * sizeof(FlightSlot)) {
    return util::Status::InvalidArgument("flight dump truncated: " + path);
  }
  FlightDump dump;
  dump.version = header.version;
  dump.signal = header.signal;
  dump.stage_count = header.stage_count;
  dump.records_total = header.records_total;
  dump.promoted_total = header.promoted_total;
  dump.dropped_total = header.dropped_total;
  dump.slow_threshold_ms = header.slow_threshold_ms;
  ParseSlots(data.data() + sizeof(header), ring_slots, &dump.records);
  ParseSlots(data.data() + sizeof(header) + ring_slots * sizeof(FlightSlot),
             header.retained_capacity, &dump.retained);
  return dump;
}

// ---------------------------------------------------------------------------
// Crash forensics
// ---------------------------------------------------------------------------

namespace {

constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS};
constexpr int kNumCrashSignals = 3;

/// Everything the fatal-signal handler touches, pre-rendered at install /
/// refresh time so the handler itself does no formatting beyond decimal
/// pids and no allocation at all.
struct CrashState {
  std::atomic<bool> installed{false};
  std::atomic<bool> dumping{false};
  char dir[512] = {};
  char manifest[16 * 1024] = {};
  size_t manifest_len = 0;
  char metrics[256 * 1024] = {};
  std::atomic<size_t> metrics_len{0};
  struct sigaction previous[kNumCrashSignals] = {};
  FlightRecorder* recorder = nullptr;
};
CrashState g_crash;

// Async-signal-safe string building into a bounded buffer (no snprintf —
// not on the POSIX async-signal-safe list).
size_t AppendStr(char* dst, size_t cap, size_t pos, const char* s) {
  while (*s != '\0' && pos + 1 < cap) dst[pos++] = *s++;
  dst[pos] = '\0';
  return pos;
}

size_t AppendU64(char* dst, size_t cap, size_t pos, uint64_t v) {
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos + 1 < cap) dst[pos++] = digits[--n];
  dst[pos] = '\0';
  return pos;
}

/// Writes one crash artifact `<dir>/crash-<pid>.<suffix>` from a memory
/// region; silently gives up on any failure (we are crashing).
void WriteCrashFile(const char* suffix, const void* data, size_t size) {
  char path[640];
  size_t pos = AppendStr(path, sizeof(path), 0, g_crash.dir);
  pos = AppendStr(path, sizeof(path), pos, "/crash-");
  pos = AppendU64(path, sizeof(path), pos, static_cast<uint64_t>(::getpid()));
  pos = AppendStr(path, sizeof(path), pos, ".");
  AppendStr(path, sizeof(path), pos, suffix);
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  if (data != nullptr && size > 0) WriteFully(fd, data, size);
  ::close(fd);
}

void RestoreCrashDispositions() {
  for (int i = 0; i < kNumCrashSignals; ++i) {
    struct sigaction dfl;
    std::memset(&dfl, 0, sizeof(dfl));
    dfl.sa_handler = SIG_DFL;
    ::sigaction(kCrashSignals[i], &dfl, nullptr);
  }
}

void FlightCrashHandler(int sig) {
  // Second fatal signal (possibly from another thread, or from the dump
  // itself): skip straight to the default disposition.
  if (!g_crash.dumping.exchange(true)) {
    ::mkdir(g_crash.dir, 0755);  // EEXIST is fine
    char path[640];
    size_t pos = AppendStr(path, sizeof(path), 0, g_crash.dir);
    pos = AppendStr(path, sizeof(path), pos, "/crash-");
    pos = AppendU64(path, sizeof(path), pos,
                    static_cast<uint64_t>(::getpid()));
    AppendStr(path, sizeof(path), pos, ".flight");
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      (void)g_crash.recorder->WriteDump(fd, static_cast<uint32_t>(sig));
      ::close(fd);
    }
    WriteCrashFile("manifest.json", g_crash.manifest, g_crash.manifest_len);
    WriteCrashFile("metrics.jsonl", g_crash.metrics,
                   g_crash.metrics_len.load(std::memory_order_acquire));
  }
  RestoreCrashDispositions();
  ::raise(sig);
}

}  // namespace

void RefreshCrashMetricsSnapshot() {
  if (!g_crash.installed.load(std::memory_order_acquire)) return;
  std::ostringstream os;
  DefaultMetrics().WriteJsonl(os);
  const std::string text = os.str();
  const size_t n = std::min(text.size(), sizeof(g_crash.metrics) - 1);
  // Publish length 0 while copying so a concurrent crash never writes a
  // half-updated buffer (it writes an empty one instead).
  g_crash.metrics_len.store(0, std::memory_order_release);
  std::memcpy(g_crash.metrics, text.data(), n);
  g_crash.metrics[n] = '\0';
  g_crash.metrics_len.store(n, std::memory_order_release);
}

util::Status InstallFlightCrashHandler(const std::string& dump_dir,
                                       const std::string& manifest_text) {
  if (dump_dir.empty() || dump_dir.size() >= sizeof(g_crash.dir)) {
    return util::Status::InvalidArgument(
        "flight dump dir empty or longer than 511 bytes: " + dump_dir);
  }
  std::memcpy(g_crash.dir, dump_dir.c_str(), dump_dir.size() + 1);
  g_crash.manifest_len =
      std::min(manifest_text.size(), sizeof(g_crash.manifest) - 1);
  std::memcpy(g_crash.manifest, manifest_text.data(), g_crash.manifest_len);
  g_crash.manifest[g_crash.manifest_len] = '\0';
  g_crash.recorder = &FlightRecorder::Default();
  g_crash.dumping.store(false, std::memory_order_relaxed);
  if (!g_crash.installed.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = FlightCrashHandler;
    sigemptyset(&sa.sa_mask);
    for (int i = 0; i < kNumCrashSignals; ++i) {
      if (::sigaction(kCrashSignals[i], &sa, &g_crash.previous[i]) != 0) {
        g_crash.installed.store(false, std::memory_order_release);
        return util::Status::Internal("sigaction failed installing handler");
      }
    }
  }
  RefreshCrashMetricsSnapshot();
  return util::Status::Ok();
}

void UninstallFlightCrashHandler() {
  if (!g_crash.installed.exchange(false, std::memory_order_acq_rel)) return;
  for (int i = 0; i < kNumCrashSignals; ++i) {
    ::sigaction(kCrashSignals[i], &g_crash.previous[i], nullptr);
  }
  g_crash.dumping.store(false, std::memory_order_relaxed);
}

}  // namespace ucad::obs
