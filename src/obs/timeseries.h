#ifndef UCAD_OBS_TIMESERIES_H_
#define UCAD_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace ucad::obs {

/// Options for the metrics time-series store.
struct TimeSeriesOptions {
  /// Ticks retained; the ring evicts the oldest tick past this. At the
  /// default 1s interval this keeps 10 minutes of history.
  size_t capacity = 600;
  /// Sampler thread interval (Start()).
  int64_t interval_ms = 1000;
};

/// Cumulative histogram state captured at one tick: total count/sum plus
/// the per-bucket counts (finite buckets in bound order, then the +inf
/// overflow bucket).
struct HistogramPoint {
  uint64_t count = 0;
  double sum = 0.0;
  std::vector<uint64_t> buckets;
};

/// A windowed histogram delta (later tick minus earlier tick) with
/// percentiles estimated over the delta buckets — "p99 over the last
/// minute", which the cumulative-forever registry histograms cannot show.
struct WindowedHistogram {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Subtracts cumulative histogram state `earlier` from `later` over shared
/// `bounds`. A later point with fewer total observations than the earlier
/// one means the producing process (or registry) restarted between the two
/// snapshots: the delta is then clamped to EMPTY — never underflowed —
/// because the earlier baseline no longer describes the same counter
/// stream. Individual bucket underflows (torn relaxed-atomic reads) clamp
/// to zero per bucket.
WindowedHistogram HistogramDelta(const HistogramPoint& later,
                                 const HistogramPoint& earlier,
                                 const std::vector<double>& bounds);

/// Fixed-capacity in-process metrics history: samples a MetricsRegistry on
/// a tick (manually via Sample, or from a background thread via Start),
/// retains the last `capacity` ticks in a ring, and answers windowed
/// queries the cumulative registry cannot: counter rates over the last N
/// seconds and histogram-delta percentiles per window. The retained
/// history is served as JSON by the metrics server's /history endpoint.
///
/// Thread-safe: Sample and every query take one internal mutex; sampling
/// reads the registry only through its thread-safe scrape surface, so
/// ticking concurrently with detector scoring is safe.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(MetricsRegistry* registry = nullptr,
                           TimeSeriesOptions options = {});
  ~TimeSeriesStore();
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Captures one tick stamped `unix_ms` (wall clock when <= 0). Evicts
  /// the oldest tick past capacity. Returns the tick's timestamp.
  int64_t Sample(int64_t unix_ms = 0);

  /// Spawns the sampler thread: one Sample per options().interval_ms,
  /// invoking `after_sample` (may be null) with the tick timestamp after
  /// each capture — the hook the CLI uses to re-evaluate SLOs at tick
  /// cadence. No-op when already running.
  void Start(std::function<void(int64_t)> after_sample = nullptr);

  /// Stops and joins the sampler thread. Idempotent; the destructor calls
  /// it.
  void Stop();
  bool sampling() const;

  size_t TickCount() const;
  /// Unix-ms timestamp of the newest tick (0 when empty).
  int64_t LatestTickMs() const;

  /// Per-second rate of counter `series` over the trailing `window_ms`
  /// ending at the newest tick: clamped delta / elapsed. The window start
  /// clamps to the oldest retained tick, so short histories answer with
  /// what they have. False when the series is unknown, fewer than two
  /// ticks cover it, or no time elapsed. A counter reset (later < earlier,
  /// process restart) clamps the delta to zero rather than underflowing.
  bool CounterRate(const std::string& series, int64_t window_ms,
                   double* rate_per_sec) const;

  /// Histogram delta over the trailing `window_ms` (see HistogramDelta for
  /// the restart clamp). False when the series is unknown or fewer than
  /// two ticks cover it.
  bool HistogramWindow(const std::string& series, int64_t window_ms,
                       WindowedHistogram* out) const;

  /// Latest sampled value of gauge `series`; false when never sampled.
  bool GaugeLatest(const std::string& series, double* value) const;

  /// Maximum sampled value of gauge `series` over the trailing
  /// `window_ms`; false when no tick in the window carries it.
  bool GaugeMax(const std::string& series, int64_t window_ms,
                double* value) const;

  /// Minimum sampled value of gauge `series` over the trailing
  /// `window_ms`; false when no tick in the window carries it.
  bool GaugeMin(const std::string& series, int64_t window_ms,
                double* value) const;

  /// The retained history as one JSON object:
  ///
  ///   {"interval_ms":N,"capacity":N,
  ///    "ticks":[unix_ms,...],
  ///    "series":[
  ///      {"series":"detector/sessions_total","type":"counter",
  ///       "values":[...],"rates":[...]},          // per-tick rate (/sec)
  ///      {"series":"detector/drift/psi","type":"gauge","values":[...]},
  ///      {"series":"detector/score_latency_ms","type":"histogram",
  ///       "counts":[...],                         // cumulative totals
  ///       "window_counts":[...],                  // per-tick deltas
  ///       "p50":[...],"p99":[...]}]}              // per-tick delta pcts
  ///
  /// Arrays parallel "ticks"; ticks before a series first appeared carry
  /// 0. `last_ticks` limits to the newest N ticks (0 = all retained);
  /// `prefix` keeps only series whose name starts with it (empty = all).
  std::string HistoryJson(size_t last_ticks = 0,
                          const std::string& prefix = {}) const;

  const TimeSeriesOptions& options() const { return options_; }

 private:
  /// Scalar (counter/gauge) observation at one tick.
  struct ScalarPoint {
    uint32_t series_id;
    double value;
  };
  struct HistogramTickPoint {
    uint32_t series_id;
    HistogramPoint point;
  };
  struct Tick {
    int64_t unix_ms = 0;
    std::vector<ScalarPoint> scalars;
    std::vector<HistogramTickPoint> histograms;
  };
  /// One interned series: rendered key ("name{k=v,...}"), type, and (for
  /// histograms) the bucket bounds captured on first sight.
  struct SeriesInfo {
    std::string key;
    char type = '?';  // 'c' counter, 'g' gauge, 'h' histogram
    std::vector<double> bounds;
  };

  uint32_t InternLocked(const std::string& key, char type);
  /// Oldest tick index whose timestamp is >= newest - window (clamped to
  /// the ring); SIZE_MAX when the ring is empty.
  size_t WindowStartLocked(int64_t window_ms) const;
  bool FindSeriesLocked(const std::string& series, char type,
                        uint32_t* id) const;
  /// Scalar value of series `id` at tick `t` (false when absent).
  bool ScalarAtLocked(size_t t, uint32_t id, double* value) const;
  const HistogramPoint* HistogramAtLocked(size_t t, uint32_t id) const;

  MetricsRegistry* registry_;
  const TimeSeriesOptions options_;

  mutable std::mutex mu_;
  std::vector<SeriesInfo> series_;
  std::unordered_map<std::string, uint32_t> series_index_;
  std::deque<Tick> ticks_;

  mutable std::mutex sampler_mu_;  // guards thread start/stop handshake
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::thread sampler_;
};

}  // namespace ucad::obs

#endif  // UCAD_OBS_TIMESERIES_H_
