#ifndef UCAD_OBS_PROM_TEXT_H_
#define UCAD_OBS_PROM_TEXT_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace ucad::obs {

/// Sanitizes a registry metric name into a legal Prometheus metric name
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): every illegal character (the registry's
/// '/' separators, '-', '.') becomes '_', and a leading digit gets a '_'
/// prefix. "detector/drift/psi" -> "detector_drift_psi".
std::string PromName(const std::string& name);

/// Sanitizes a label name ([a-zA-Z_][a-zA-Z0-9_]*).
std::string PromLabelName(const std::string& name);

/// Escapes a label value for the text exposition format: backslash,
/// double quote, and newline.
std::string PromLabelValue(const std::string& value);

/// Writes the registry in Prometheus text exposition format (version
/// 0.0.4): one `# TYPE` line per metric name, counters and gauges as
/// single samples, histograms as cumulative `_bucket{le=...}` samples
/// plus `_sum` and `_count`. Series order follows the registry's
/// deterministic ordering.
void WritePromText(const MetricsRegistry& registry, std::ostream& os);

/// WritePromText into a string (the /metrics response body).
std::string PromText(const MetricsRegistry& registry);

}  // namespace ucad::obs

#endif  // UCAD_OBS_PROM_TEXT_H_
