#include "obs/audit_log.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace ucad::obs {

namespace {

/// JSON float: enough digits to round-trip a float; non-finite values have
/// no JSON spelling and become null (only `margin` of unknown-key records
/// is ever non-finite).
std::string FloatJson(float v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string AuditRecordToJson(const AuditRecord& record) {
  std::ostringstream os;
  os << "{\"session\":\"" << JsonEscape(record.session_id) << "\""
     << ",\"position\":" << record.position << ",\"key\":" << record.key;
  if (!record.observed.empty()) {
    os << ",\"observed\":\"" << JsonEscape(record.observed) << "\"";
  }
  os << ",\"rank\":" << record.rank << ",\"score\":" << FloatJson(record.score)
     << ",\"margin\":" << FloatJson(record.margin)
     << ",\"abnormal\":" << (record.abnormal ? "true" : "false");
  if (!record.expected.empty()) {
    os << ",\"expected\":[";
    for (size_t i = 0; i < record.expected.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"key\":" << record.expected[i].key
         << ",\"score\":" << FloatJson(record.expected[i].score) << "}";
    }
    os << "]";
  }
  if (record.has_explain) {
    os << ",\"explain\":" << ExplainBlockToJson(record.explain);
  }
  os << ",\"wall_ms\":" << record.wall_ms;
  if (!record.model_hash.empty()) {
    os << ",\"model_hash\":\"" << JsonEscape(record.model_hash) << "\"";
  }
  os << "}";
  return os.str();
}

util::Result<AuditRecord> ParseAuditRecord(const std::string& json_line) {
  util::Result<JsonValue> doc = ParseJson(json_line);
  if (!doc.ok()) return doc.status();
  if (doc->type != JsonValue::Type::kObject) {
    return util::Status::InvalidArgument("audit record is not a JSON object");
  }
  const JsonValue* session = doc->Find("session");
  const JsonValue* rank = doc->Find("rank");
  if (session == nullptr || session->type != JsonValue::Type::kString ||
      rank == nullptr || rank->type != JsonValue::Type::kNumber) {
    return util::Status::InvalidArgument(
        "audit record missing required fields (session, rank)");
  }
  AuditRecord record;
  record.session_id = session->string_value;
  record.rank = static_cast<int>(rank->number);
  auto number = [&doc](const char* name, double fallback) {
    const JsonValue* v = doc->Find(name);
    return v != nullptr ? v->NumberOr(fallback) : fallback;
  };
  record.position = static_cast<int>(number("position", 0));
  record.key = static_cast<int>(number("key", 0));
  // null score/margin (unknown key) parse back as the non-finite sentinel.
  const JsonValue* score = doc->Find("score");
  record.score = score != nullptr && score->type == JsonValue::Type::kNumber
                     ? static_cast<float>(score->number)
                     : 0.0f;
  const JsonValue* margin = doc->Find("margin");
  record.margin = margin != nullptr && margin->type == JsonValue::Type::kNumber
                      ? static_cast<float>(margin->number)
                      : -std::numeric_limits<float>::infinity();
  const JsonValue* abnormal = doc->Find("abnormal");
  record.abnormal = abnormal != nullptr && abnormal->bool_value;
  const JsonValue* observed = doc->Find("observed");
  if (observed != nullptr) record.observed = observed->string_value;
  record.wall_ms = static_cast<int64_t>(number("wall_ms", 0));
  const JsonValue* hash = doc->Find("model_hash");
  if (hash != nullptr) record.model_hash = hash->string_value;
  const JsonValue* expected = doc->Find("expected");
  if (expected != nullptr && expected->type == JsonValue::Type::kArray) {
    for (const JsonValue& cand : expected->array) {
      AuditCandidate c;
      const JsonValue* key = cand.Find("key");
      const JsonValue* cscore = cand.Find("score");
      c.key = key != nullptr ? static_cast<int>(key->NumberOr(0)) : 0;
      c.score =
          cscore != nullptr ? static_cast<float>(cscore->NumberOr(0)) : 0.0f;
      record.expected.push_back(c);
    }
  }
  const JsonValue* explain = doc->Find("explain");
  if (explain != nullptr) {
    util::Result<ExplainBlock> block = ParseExplainBlock(*explain);
    if (!block.ok()) return block.status();
    record.explain = std::move(*block);
    record.has_explain = true;
  }
  return record;
}

util::Result<std::vector<AuditRecord>> ReadAuditLogFile(
    const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return util::Status::NotFound("cannot open audit log: " + path);
  }
  std::vector<AuditRecord> records;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    util::Result<AuditRecord> record = ParseAuditRecord(line);
    if (!record.ok()) {
      return util::Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": " +
          record.status().message());
    }
    records.push_back(std::move(*record));
  }
  return records;
}

util::Result<std::unique_ptr<AuditLog>> AuditLog::Open(
    const std::string& path, AuditLogOptions options) {
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) {
    return util::Status::NotFound("cannot open audit log for writing: " +
                                  path);
  }
  return std::unique_ptr<AuditLog>(
      new AuditLog(path, std::move(os), std::move(options)));
}

AuditLog::AuditLog(std::string path, std::ofstream os, AuditLogOptions options)
    : path_(std::move(path)), options_(std::move(options)),
      os_(std::move(os)) {
  queue_.reserve(std::min<size_t>(options_.queue_capacity, 1024));
  writer_ = std::thread(&AuditLog::WriterLoop, this);
}

AuditLog::~AuditLog() { Close(); }

bool AuditLog::Append(AuditRecord record) {
  if (record.wall_ms == 0) record.wall_ms = NowUnixMs();
  if (record.model_hash.empty()) record.model_hash = options_.model_hash;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      ++dropped_;
      return false;
    }
    queue_.push_back(std::move(record));
    ++appended_;
  }
  queue_ready_.notify_one();
  return true;
}

void AuditLog::WriterLoop() {
  std::vector<AuditRecord> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      batch.swap(queue_);
      writer_idle_ = false;
    }
    for (const AuditRecord& record : batch) {
      std::string line = AuditRecordToJson(record);
      os_ << line << "\n";
      bytes_written_ += line.size() + 1;
    }
    os_.flush();
    MaybeRotate();
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_idle_ = true;
    }
    queue_drained_.notify_all();
  }
}

void AuditLog::MaybeRotate() {
  if (options_.max_bytes == 0 || bytes_written_ < options_.max_bytes) return;
  os_.close();
  // Single-slot rollover: the previous .1 (if any) is replaced. rename()
  // is atomic on POSIX, so readers always see either the old or new file.
  std::rename(path_.c_str(), (path_ + ".1").c_str());
  os_.open(path_, std::ios::trunc);
  bytes_written_ = 0;
  std::lock_guard<std::mutex> lock(mu_);
  ++rotations_;
}

void AuditLog::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  queue_drained_.wait(lock, [this] { return queue_.empty() && writer_idle_; });
}

void AuditLog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !writer_.joinable()) return;
    stopping_ = true;
  }
  queue_ready_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (os_.is_open()) {
    os_.flush();
    os_.close();
  }
  // Fold the accept/drop tally into the registry so snapshots carry it.
  if (MetricsEnabled()) {
    MetricsRegistry& reg = DefaultMetrics();
    reg.GetCounter("audit/records_total")->Increment(appended());
    if (dropped() > 0) {
      reg.GetCounter("audit/dropped_total")->Increment(dropped());
    }
    if (rotations() > 0) {
      reg.GetCounter("audit/rotations_total")->Increment(rotations());
    }
  }
}

uint64_t AuditLog::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

uint64_t AuditLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t AuditLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

}  // namespace ucad::obs
