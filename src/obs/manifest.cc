#include "obs/manifest.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "util/cpu_features.h"

#ifndef UCAD_GIT_SHA
#define UCAD_GIT_SHA "unknown"
#endif
#ifndef UCAD_BUILD_TYPE
#define UCAD_BUILD_TYPE "unknown"
#endif
#ifndef UCAD_COMPILER
#define UCAD_COMPILER "unknown"
#endif
#ifndef UCAD_BUILD_FLAGS
#define UCAD_BUILD_FLAGS ""
#endif

namespace ucad::obs {

std::string BuildGitSha() { return UCAD_GIT_SHA; }
std::string BuildType() { return UCAD_BUILD_TYPE; }
std::string BuildCompiler() { return UCAD_COMPILER; }
std::string BuildFlags() { return UCAD_BUILD_FLAGS; }

int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux (bytes on macOS, where this would
  // over-report 1024x; all supported builds are Linux).
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

double ProcessCpuSeconds() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  auto seconds = [](const struct timeval& tv) {
    return static_cast<double>(tv.tv_sec) + tv.tv_usec * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

uint64_t Fnv1aHash64(const std::string& s) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

namespace {
/// Anchored once during static initialization — close enough to process
/// start for an uptime gauge.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();
}  // namespace

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

void PublishBuildInfo(MetricsRegistry* registry) {
  if (registry == nullptr) registry = &DefaultMetrics();
  registry
      ->GetGauge("obs/build_info",
                 {{"git_sha", BuildGitSha()},
                  {"build_type", BuildType()},
                  {"cpu_features", util::CpuFeaturesString()},
                  {"simd_isa", util::SimdIsaName(util::ActiveSimdIsa())}})
      ->Set(1.0);
  registry->GetGauge("proc/uptime_seconds")->Set(ProcessUptimeSeconds());
}

namespace {

int CacheLineBytes() {
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
  const long v = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  if (v > 0) return static_cast<int>(v);
#endif
  return 64;
}

int PageBytes() {
  const long v = sysconf(_SC_PAGESIZE);
  return v > 0 ? static_cast<int>(v) : 4096;
}

std::string JsonStr(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string HexHash(uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
  return buf;
}

}  // namespace

RunManifest::RunManifest(std::string tool)
    : tool_(std::move(tool)), start_(std::chrono::steady_clock::now()) {
  start_unix_ms_ = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
}

RunManifest& RunManifest::SetTool(std::string tool) {
  tool_ = std::move(tool);
  return *this;
}

RunManifest& RunManifest::SetCommandLine(int argc, char** argv) {
  argv_.assign(argv, argv + argc);
  return *this;
}

RunManifest& RunManifest::SetCommandLine(std::vector<std::string> args) {
  argv_ = std::move(args);
  return *this;
}

RunManifest& RunManifest::SetSeed(uint64_t seed) {
  has_seed_ = true;
  seed_ = seed;
  return *this;
}

RunManifest& RunManifest::SetConfigHash(uint64_t hash) {
  has_config_hash_ = true;
  config_hash_ = hash;
  return *this;
}

RunManifest& RunManifest::SetConfigText(const std::string& config_text) {
  return SetConfigHash(Fnv1aHash64(config_text));
}

RunManifest& RunManifest::AddNote(const std::string& key,
                                  const std::string& value) {
  notes_.emplace_back(key, value);
  return *this;
}

void RunManifest::Write(std::ostream& os) const {
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"tool\": " << JsonStr(tool_) << ",\n";
  os << "  \"argv\": [";
  for (size_t i = 0; i < argv_.size(); ++i) {
    if (i > 0) os << ", ";
    os << JsonStr(argv_[i]);
  }
  os << "],\n";
  os << "  \"git_sha\": " << JsonStr(BuildGitSha()) << ",\n";
  os << "  \"build_type\": " << JsonStr(BuildType()) << ",\n";
  os << "  \"compiler\": " << JsonStr(BuildCompiler()) << ",\n";
  os << "  \"build_flags\": " << JsonStr(BuildFlags()) << ",\n";
  if (has_seed_) os << "  \"seed\": " << seed_ << ",\n";
  if (has_config_hash_) {
    os << "  \"config_hash\": " << JsonStr(HexHash(config_hash_)) << ",\n";
  }
  os << "  \"hardware\": {\"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ", \"cache_line_bytes\": " << CacheLineBytes()
     << ", \"page_bytes\": " << PageBytes()
     << ", \"cpu_features\": " << JsonStr(util::CpuFeaturesString())
     << ", \"simd_isa\": "
     << JsonStr(util::SimdIsaName(util::ActiveSimdIsa())) << "},\n";
  os << "  \"start_unix_ms\": " << start_unix_ms_ << ",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", wall_seconds);
  os << "  \"wall_seconds\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.6f", ProcessCpuSeconds());
  os << "  \"cpu_seconds\": " << buf << ",\n";
  os << "  \"peak_rss_bytes\": " << PeakRssBytes() << ",\n";
  os << "  \"notes\": {";
  for (size_t i = 0; i < notes_.size(); ++i) {
    if (i > 0) os << ", ";
    os << JsonStr(notes_[i].first) << ": " << JsonStr(notes_[i].second);
  }
  os << "},\n";
  // The final registry snapshot, one series per array element (the same
  // objects WriteJsonl emits one-per-line).
  os << "  \"metrics\": [";
  std::ostringstream metrics;
  DefaultMetrics().WriteJsonl(metrics);
  std::istringstream lines(metrics.str());
  std::string line;
  bool first = true;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (!first) os << ",";
    os << "\n    " << line;
    first = false;
  }
  if (!first) os << "\n  ";
  os << "]\n";
  os << "}\n";
}

util::Status RunManifest::WriteFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os.is_open()) {
    return util::Status::NotFound("cannot open manifest output: " + path);
  }
  Write(os);
  os.flush();
  if (!os.good()) {
    return util::Status::Internal("short write to manifest output: " + path);
  }
  return util::Status::Ok();
}

}  // namespace ucad::obs
