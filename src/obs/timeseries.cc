#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

namespace ucad::obs {

namespace {

int64_t WallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// "name{k=v,...}" — the same series-key rendering snapshot.cc derives when
/// parsing a JSONL dump, so /history series line up with bench_compare and
/// snapshot tooling.
std::string RenderSeriesKey(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ",";
    key += labels[i].first + "=" + labels[i].second;
  }
  key += "}";
  return key;
}

/// Interpolated quantile over DELTA bucket counts (finite buckets in bound
/// order, then overflow). Mirrors Histogram::Percentile's scheme: linear
/// interpolation inside the bucket that holds the target rank, with the
/// overflow bucket pinned to its lower bound.
double DeltaPercentile(const std::vector<uint64_t>& buckets,
                       const std::vector<double>& bounds, uint64_t total,
                       double q) {
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= rank) {
      const bool overflow = i >= bounds.size();
      const double upper = overflow ? bounds.empty() ? 0.0 : bounds.back()
                                    : bounds[i];
      if (overflow) return upper;  // unbounded bucket: report its floor
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void AppendDouble(std::string* out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    *out += "0";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace

WindowedHistogram HistogramDelta(const HistogramPoint& later,
                                 const HistogramPoint& earlier,
                                 const std::vector<double>& bounds) {
  WindowedHistogram out;
  // Restart clamp: a shrinking total count means the counter stream reset
  // underneath us; any per-bucket subtraction would mix two lifetimes.
  if (later.count < earlier.count) return out;
  out.count = later.count - earlier.count;
  out.sum = later.sum >= earlier.sum ? later.sum - earlier.sum : 0.0;
  if (out.count == 0) return out;
  std::vector<uint64_t> delta(later.buckets.size(), 0);
  for (size_t i = 0; i < later.buckets.size(); ++i) {
    const uint64_t earlier_count =
        i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    delta[i] = later.buckets[i] >= earlier_count
                   ? later.buckets[i] - earlier_count
                   : 0;
  }
  out.p50 = DeltaPercentile(delta, bounds, out.count, 0.50);
  out.p99 = DeltaPercentile(delta, bounds, out.count, 0.99);
  return out;
}

TimeSeriesStore::TimeSeriesStore(MetricsRegistry* registry,
                                 TimeSeriesOptions options)
    : registry_(registry != nullptr ? registry : &DefaultMetrics()),
      options_(options) {}

TimeSeriesStore::~TimeSeriesStore() { Stop(); }

uint32_t TimeSeriesStore::InternLocked(const std::string& key, char type) {
  auto it = series_index_.find(key);
  if (it != series_index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(series_.size());
  series_.push_back(SeriesInfo{key, type, {}});
  series_index_.emplace(key, id);
  return id;
}

int64_t TimeSeriesStore::Sample(int64_t unix_ms) {
  if (unix_ms <= 0) unix_ms = WallClockMs();
  Tick tick;
  tick.unix_ms = unix_ms;
  // Capture outside mu_ ordering concerns: ForEachSeries holds the registry
  // lock, our mu_ is taken after; queries never touch the registry, so the
  // two locks nest in only this one order.
  std::lock_guard<std::mutex> lock(mu_);
  registry_->ForEachSeries([&](const MetricsRegistry::SeriesRef& ref) {
    const std::string key = RenderSeriesKey(ref.name, ref.labels);
    if (ref.counter != nullptr) {
      const uint32_t id = InternLocked(key, 'c');
      tick.scalars.push_back(
          {id, static_cast<double>(ref.counter->Value())});
    } else if (ref.gauge != nullptr) {
      const uint32_t id = InternLocked(key, 'g');
      tick.scalars.push_back({id, ref.gauge->Value()});
    } else if (ref.histogram != nullptr) {
      const uint32_t id = InternLocked(key, 'h');
      if (series_[id].bounds.empty()) {
        series_[id].bounds = ref.histogram->bounds();
      }
      HistogramPoint point;
      point.count = ref.histogram->Count();
      point.sum = ref.histogram->Sum();
      const size_t finite = ref.histogram->bounds().size();
      point.buckets.resize(finite + 1);
      for (size_t i = 0; i < finite; ++i) {
        point.buckets[i] = ref.histogram->BucketCount(i);
      }
      point.buckets[finite] = ref.histogram->OverflowCount();
      tick.histograms.push_back({id, std::move(point)});
    }
  });
  ticks_.push_back(std::move(tick));
  while (ticks_.size() > options_.capacity) ticks_.pop_front();
  return unix_ms;
}

void TimeSeriesStore::Start(std::function<void(int64_t)> after_sample) {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_.joinable()) return;
  sampler_stop_ = false;
  sampler_ = std::thread([this, after_sample = std::move(after_sample)] {
    std::unique_lock<std::mutex> lock(sampler_mu_);
    while (!sampler_stop_) {
      lock.unlock();
      const int64_t stamp = Sample();
      if (after_sample) after_sample(stamp);
      lock.lock();
      sampler_cv_.wait_for(lock,
                           std::chrono::milliseconds(options_.interval_ms),
                           [this] { return sampler_stop_; });
    }
  });
}

void TimeSeriesStore::Stop() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_.joinable()) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
}

bool TimeSeriesStore::sampling() const {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  return sampler_.joinable() && !sampler_stop_;
}

size_t TimeSeriesStore::TickCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_.size();
}

int64_t TimeSeriesStore::LatestTickMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_.empty() ? 0 : ticks_.back().unix_ms;
}

size_t TimeSeriesStore::WindowStartLocked(int64_t window_ms) const {
  if (ticks_.empty()) return static_cast<size_t>(-1);
  const int64_t cutoff = ticks_.back().unix_ms - window_ms;
  size_t start = ticks_.size() - 1;
  while (start > 0 && ticks_[start - 1].unix_ms >= cutoff) --start;
  return start;
}

bool TimeSeriesStore::FindSeriesLocked(const std::string& series, char type,
                                       uint32_t* id) const {
  auto it = series_index_.find(series);
  if (it == series_index_.end()) return false;
  if (series_[it->second].type != type) return false;
  *id = it->second;
  return true;
}

bool TimeSeriesStore::ScalarAtLocked(size_t t, uint32_t id,
                                     double* value) const {
  for (const ScalarPoint& p : ticks_[t].scalars) {
    if (p.series_id == id) {
      *value = p.value;
      return true;
    }
  }
  return false;
}

const HistogramPoint* TimeSeriesStore::HistogramAtLocked(size_t t,
                                                         uint32_t id) const {
  for (const HistogramTickPoint& p : ticks_[t].histograms) {
    if (p.series_id == id) return &p.point;
  }
  return nullptr;
}

bool TimeSeriesStore::CounterRate(const std::string& series,
                                  int64_t window_ms,
                                  double* rate_per_sec) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id;
  if (!FindSeriesLocked(series, 'c', &id) || ticks_.size() < 2) return false;
  const size_t start = WindowStartLocked(window_ms);
  const size_t end = ticks_.size() - 1;
  // Earliest/latest ticks inside the window that carry this series.
  double first = 0.0, last = 0.0;
  int64_t first_ms = 0, last_ms = 0;
  bool have_first = false, have_last = false;
  for (size_t t = start; t <= end && !have_first; ++t) {
    if (ScalarAtLocked(t, id, &first)) {
      first_ms = ticks_[t].unix_ms;
      have_first = true;
    }
  }
  for (size_t t = end + 1; t-- > start && !have_last;) {
    if (ScalarAtLocked(t, id, &last)) {
      last_ms = ticks_[t].unix_ms;
      have_last = true;
    }
  }
  if (!have_first || !have_last || last_ms <= first_ms) return false;
  const double delta = last >= first ? last - first : 0.0;  // restart clamp
  *rate_per_sec = delta / (static_cast<double>(last_ms - first_ms) / 1000.0);
  return true;
}

bool TimeSeriesStore::HistogramWindow(const std::string& series,
                                      int64_t window_ms,
                                      WindowedHistogram* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id;
  if (!FindSeriesLocked(series, 'h', &id) || ticks_.size() < 2) return false;
  const size_t start = WindowStartLocked(window_ms);
  const size_t end = ticks_.size() - 1;
  const HistogramPoint* first = nullptr;
  const HistogramPoint* last = nullptr;
  for (size_t t = start; t <= end && first == nullptr; ++t) {
    first = HistogramAtLocked(t, id);
  }
  for (size_t t = end + 1; t-- > start && last == nullptr;) {
    last = HistogramAtLocked(t, id);
  }
  if (first == nullptr || last == nullptr || first == last) return false;
  *out = HistogramDelta(*last, *first, series_[id].bounds);
  return true;
}

bool TimeSeriesStore::GaugeLatest(const std::string& series,
                                  double* value) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id;
  if (!FindSeriesLocked(series, 'g', &id)) return false;
  for (size_t t = ticks_.size(); t-- > 0;) {
    if (ScalarAtLocked(t, id, value)) return true;
  }
  return false;
}

bool TimeSeriesStore::GaugeMax(const std::string& series, int64_t window_ms,
                               double* value) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id;
  if (!FindSeriesLocked(series, 'g', &id) || ticks_.empty()) return false;
  const size_t start = WindowStartLocked(window_ms);
  bool found = false;
  for (size_t t = start; t < ticks_.size(); ++t) {
    double v;
    if (ScalarAtLocked(t, id, &v)) {
      if (!found || v > *value) *value = v;
      found = true;
    }
  }
  return found;
}

bool TimeSeriesStore::GaugeMin(const std::string& series, int64_t window_ms,
                               double* value) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id;
  if (!FindSeriesLocked(series, 'g', &id) || ticks_.empty()) return false;
  const size_t start = WindowStartLocked(window_ms);
  bool found = false;
  for (size_t t = start; t < ticks_.size(); ++t) {
    double v;
    if (ScalarAtLocked(t, id, &v)) {
      if (!found || v < *value) *value = v;
      found = true;
    }
  }
  return found;
}

std::string TimeSeriesStore::HistoryJson(size_t last_ticks,
                                         const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t total = ticks_.size();
  const size_t start =
      last_ticks > 0 && last_ticks < total ? total - last_ticks : 0;
  const size_t n = total - start;

  std::string out;
  out.reserve(4096);
  out += "{\"interval_ms\":" + std::to_string(options_.interval_ms);
  out += ",\"capacity\":" + std::to_string(options_.capacity);
  out += ",\"ticks\":[";
  for (size_t t = start; t < total; ++t) {
    if (t > start) out += ",";
    out += std::to_string(ticks_[t].unix_ms);
  }
  out += "],\"series\":[";

  bool first_series = true;
  for (uint32_t id = 0; id < series_.size(); ++id) {
    const SeriesInfo& info = series_[id];
    if (!prefix.empty() && info.key.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (!first_series) out += ",";
    first_series = false;
    out += "{\"series\":\"" + JsonEscape(info.key) + "\",\"type\":\"";
    out += info.type == 'c'   ? "counter"
           : info.type == 'g' ? "gauge"
                              : "histogram";
    out += "\"";
    if (info.type == 'c' || info.type == 'g') {
      out += ",\"values\":[";
      std::vector<double> values(n, 0.0);
      for (size_t t = start; t < total; ++t) {
        double v = 0.0;
        ScalarAtLocked(t, id, &v);
        values[t - start] = v;
      }
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) out += ",";
        AppendDouble(&out, values[i]);
      }
      out += "]";
      if (info.type == 'c') {
        // Per-tick rate: clamped delta from the previous tick over the
        // elapsed wall time (first tick in view rates 0).
        out += ",\"rates\":[";
        for (size_t t = start; t < total; ++t) {
          if (t > start) out += ",";
          double rate = 0.0;
          if (t > 0) {
            double prev = 0.0, cur = 0.0;
            const bool have_prev = ScalarAtLocked(t - 1, id, &prev);
            const bool have_cur = ScalarAtLocked(t, id, &cur);
            const int64_t dt = ticks_[t].unix_ms - ticks_[t - 1].unix_ms;
            if (have_prev && have_cur && dt > 0 && cur >= prev) {
              rate = (cur - prev) / (static_cast<double>(dt) / 1000.0);
            }
          }
          AppendDouble(&out, rate);
        }
        out += "]";
      }
    } else {
      // Histogram: cumulative counts plus per-tick windowed deltas.
      std::string counts = ",\"counts\":[";
      std::string window_counts = ",\"window_counts\":[";
      std::string p50 = ",\"p50\":[";
      std::string p99 = ",\"p99\":[";
      for (size_t t = start; t < total; ++t) {
        if (t > start) {
          counts += ",";
          window_counts += ",";
          p50 += ",";
          p99 += ",";
        }
        const HistogramPoint* cur = HistogramAtLocked(t, id);
        counts += std::to_string(cur != nullptr ? cur->count : 0);
        WindowedHistogram w;
        if (t > 0 && cur != nullptr) {
          const HistogramPoint* prev = HistogramAtLocked(t - 1, id);
          if (prev != nullptr) w = HistogramDelta(*cur, *prev, info.bounds);
        }
        window_counts += std::to_string(w.count);
        AppendDouble(&p50, w.p50);
        AppendDouble(&p99, w.p99);
      }
      out += counts + "]" + window_counts + "]" + p50 + "]" + p99 + "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace ucad::obs
