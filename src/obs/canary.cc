#include "obs/canary.h"

#include <algorithm>

#include "sql/session.h"
#include "util/timer.h"

namespace ucad::obs {

const char* ProbeClassName(ProbeClass cls) {
  switch (cls) {
    case ProbeClass::kNormal:
      return "normal";
    case ProbeClass::kRareInjection:
      return "rare_injection";
    case ProbeClass::kMimicry:
      return "mimicry";
  }
  return "unknown";
}

CanaryEngine::CanaryEngine(const workload::SessionGenerator* generator,
                           const sql::Vocabulary* vocabulary,
                           CanaryScoreFn score, CanaryExpectFn expect,
                           CanaryOptions options, MetricsRegistry* registry)
    : generator_(generator),
      vocabulary_(vocabulary),
      score_(std::move(score)),
      expect_(std::move(expect)),
      options_(options),
      registry_(registry != nullptr ? registry : &DefaultMetrics()),
      synthesizer_(generator),
      rng_(options.seed) {
  true_flag_counter_ = registry_->GetCounter("canary/true_flag_total");
  missed_flag_counter_ = registry_->GetCounter("canary/missed_flag_total");
  false_flag_counter_ = registry_->GetCounter("canary/false_flag_total");
  clean_probes_counter_ = registry_->GetCounter("canary/clean_probes_total");
  expected_flag_counter_ =
      registry_->GetCounter("canary/expected_flag_total");
  hit_rate_gauge_ = registry_->GetGauge("canary/hit_rate");
  hit_rate_gauge_->Set(1.0);
}

std::vector<int> CanaryEngine::BuildProbe(ProbeClass probe_class,
                                          bool* expect_abnormal) {
  const sql::RawSession base = generator_->GenerateNormal(&rng_);
  switch (probe_class) {
    case ProbeClass::kNormal: {
      *expect_abnormal = false;
      return sql::TokenizeSessionFrozen(base, *vocabulary_).keys;
    }
    case ProbeClass::kRareInjection: {
      *expect_abnormal = true;
      const sql::RawSession probe =
          synthesizer_.CredentialStealing(base, &rng_);
      return sql::TokenizeSessionFrozen(probe, *vocabulary_).keys;
    }
    case ProbeClass::kMimicry: {
      *expect_abnormal = true;
      std::vector<int> keys =
          sql::TokenizeSessionFrozen(base, *vocabulary_).keys;
      // Substitute one scored position (never position 0 — it has no
      // context and is never scored) with the first expected candidate
      // OUTSIDE the top-p admission set: the model's own (top_p+1)-th
      // choice. That key is plausible by construction — the hardest
      // substitution the detector must still flag.
      if (keys.size() >= 2 && expect_ != nullptr) {
        const int position =
            rng_.UniformInt(1, static_cast<int>(keys.size()) - 1);
        const std::vector<int> expected =
            expect_(keys, position, options_.top_p + 1);
        if (static_cast<int>(expected.size()) > options_.top_p) {
          keys[position] = expected[static_cast<size_t>(options_.top_p)];
          return keys;
        }
      }
      // Vocabulary smaller than top_p+1 (or no expect callback): the
      // admission set covers every known key, so no in-vocabulary mimicry
      // exists. Probe with an unknown key instead — k0 always flags.
      if (keys.size() >= 2) {
        keys[rng_.UniformInt(1, static_cast<int>(keys.size()) - 1)] = 0;
      }
      return keys;
    }
  }
  *expect_abnormal = false;
  return {};
}

ProbeResult CanaryEngine::RunProbe(ProbeClass probe_class) {
  ProbeResult result;
  result.probe_class = probe_class;
  const std::vector<int> keys =
      BuildProbe(probe_class, &result.expected_abnormal);
  util::Timer timer;
  result.flagged = score_(keys);
  result.latency_ms = timer.ElapsedMillis();

  const Labels class_labels = {{"class", ProbeClassName(probe_class)}};
  registry_->GetCounter("canary/probes_total", class_labels)->Increment();
  registry_
      ->GetHistogram("canary/probe_latency_ms", class_labels,
                     Histogram::DefaultLatencyBounds())
      ->Observe(result.latency_ms);
  ++probes_total_;
  if (result.expected_abnormal) {
    expected_flag_counter_->Increment();
    if (result.flagged) {
      ++true_flags_;
      true_flag_counter_->Increment();
    } else {
      ++missed_flags_;
      missed_flag_counter_->Increment();
    }
  } else {
    clean_probes_counter_->Increment();
    if (result.flagged) {
      ++false_flags_;
      false_flag_counter_->Increment();
    }
  }
  recent_correct_.push_back(result.Correct());
  while (recent_correct_.size() > options_.hit_rate_window) {
    recent_correct_.pop_front();
  }
  hit_rate_gauge_->Set(HitRate());
  return result;
}

std::vector<ProbeResult> CanaryEngine::RunRound() {
  std::vector<ProbeResult> results;
  results.push_back(RunProbe(ProbeClass::kNormal));
  results.push_back(RunProbe(ProbeClass::kRareInjection));
  if (expect_ != nullptr) {
    results.push_back(RunProbe(ProbeClass::kMimicry));
  }
  return results;
}

double CanaryEngine::HitRate() const {
  if (recent_correct_.empty()) return 1.0;
  const auto correct =
      std::count(recent_correct_.begin(), recent_correct_.end(), true);
  return static_cast<double>(correct) /
         static_cast<double>(recent_correct_.size());
}

}  // namespace ucad::obs
