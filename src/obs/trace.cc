#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace ucad::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

struct TraceEvent {
  const char* name;
  int64_t start_us;
  int64_t dur_us;
  uint32_t tid;
};

// Global span buffer. Spans are coarse (epochs, sessions, backward passes),
// so a mutex-guarded vector is plenty; the disabled fast path never touches
// it. Bounded so a forgotten long-running trace cannot exhaust memory.
constexpr size_t kMaxTraceEvents = 1u << 20;

struct TraceState {
  std::mutex mu;
  std::vector<TraceEvent> events;
  bool warned_full = false;
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

namespace internal {

int64_t TraceNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void RecordSpan(const char* name, int64_t start_us, int64_t dur_us) {
  TraceState& state = State();
  const uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.events.size() >= kMaxTraceEvents) {
    state.warned_full = true;
    return;
  }
  state.events.push_back(TraceEvent{name, start_us, dur_us, tid});
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  if (enabled) TraceEpoch();  // pin the epoch before the first span
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void RecordTraceSpan(const char* name, int64_t start_us, int64_t dur_us) {
  internal::RecordSpan(name, start_us, dur_us);
}

size_t TraceEventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events.size();
}

void ClearTrace() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.clear();
  state.warned_full = false;
}

void WriteChromeTrace(std::ostream& os) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < state.events.size(); ++i) {
    const TraceEvent& e = state.events[i];
    if (i > 0) os << ",";
    os << "\n{\"name\":\"" << JsonEscape(e.name)
       << "\",\"ph\":\"X\",\"cat\":\"ucad\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << e.start_us << ",\"dur\":" << e.dur_us << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"";
  if (state.warned_full) {
    os << ",\"otherData\":{\"truncated\":\"event buffer full\"}";
  }
  os << "}\n";
}

util::Status WriteChromeTraceFile(const std::string& path) {
  std::ofstream os(path);
  if (!os.is_open()) {
    return util::Status::NotFound("cannot open trace output: " + path);
  }
  WriteChromeTrace(os);
  os.flush();
  if (!os.good()) {
    return util::Status::Internal("short write to trace output: " + path);
  }
  return util::Status::Ok();
}

}  // namespace ucad::obs
