#ifndef UCAD_OBS_METRICS_H_
#define UCAD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ucad::obs {

/// Label dimensions attached to a metric instance ("eval/train_seconds"
/// with {method=DeepLog} and {method=USAD} are two distinct series).
/// Kept sorted-by-key inside the registry so label order at the call site
/// does not matter.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (events, items processed). Thread-safe;
/// increments are relaxed atomics, so concurrent writers never block.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (a rate, a loss, a queue depth).
/// Thread-safe: Set/Value are atomic loads/stores.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A concrete observation attached to a histogram bucket (OpenMetrics
/// exemplar): the value, when it happened, and trace labels that lead back
/// to the thing that produced it (e.g. a flight-recorder seq + session).
struct Exemplar {
  double value = 0.0;
  /// Wall-clock unix milliseconds at record time (0 = slot unset).
  int64_t unix_ms = 0;
  Labels labels;
};

/// Fixed-bucket histogram with percentile estimation. Observations land in
/// the first bucket whose upper bound is >= the value; one implicit
/// +inf overflow bucket catches the rest. Thread-safe: per-bucket counts
/// are relaxed atomics and sum/min/max use CAS loops, so Observe() never
/// takes a lock.
class Histogram {
 public:
  /// `bounds` are the inclusive upper bounds of the finite buckets, in
  /// strictly increasing order.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;
  double Max() const;
  double Mean() const;

  /// Estimated value at quantile q in [0, 1], linearly interpolated inside
  /// the bucket that contains the target rank. Returns 0 when empty.
  double Percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in finite bucket i (parallel to bounds()).
  uint64_t BucketCount(size_t i) const;
  /// Count of observations above the last finite bound.
  uint64_t OverflowCount() const;

  /// Attaches `value` (with trace labels and the current wall clock) as
  /// the latest exemplar of the bucket that would hold it. Does NOT count
  /// as an observation — callers Observe() every value and RecordExemplar()
  /// only the interesting ones (tail-sampled). Takes a mutex; keep it off
  /// unconditional hot paths.
  void RecordExemplar(double value, const Labels& labels);
  /// Latest exemplar of bucket i (i == bounds().size() is the overflow
  /// bucket). False when that bucket never received one.
  bool LatestExemplar(size_t i, Exemplar* out) const;

  /// Default latency-style bounds: 1us .. ~100s in a 1-2.5-5 ladder
  /// (interpreted in whatever unit the caller observes, typically ms).
  static std::vector<double> DefaultLatencyBounds();

  /// Fine latency bounds: 100ns .. ~100s with ~10 log-spaced buckets per
  /// decade. For series whose Percentile estimates feed arithmetic (the
  /// flight recorder's stage-attribution contract sums per-stage p50s
  /// against the score-latency p50), where the 1-2.5-5 ladder's
  /// within-bucket interpolation error would dominate the comparison.
  static std::vector<double> FineLatencyBounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;

  mutable std::mutex exemplar_mu_;
  /// Lazily sized to bounds_.size() + 1 on first RecordExemplar, so
  /// histograms that never sample exemplars pay nothing.
  std::vector<Exemplar> exemplars_;
};

/// Process-wide registry of named metrics. GetCounter/GetGauge/GetHistogram
/// create on first use and return a stable pointer afterwards (instances
/// are never deleted while the registry lives), so call sites may cache the
/// pointer and skip the registry lock on the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is consulted only on first creation of the series.
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> bounds = {});

  /// Writes one JSON object per line per metric series (JSONL), sorted by
  /// name so snapshots diff cleanly. Histograms include count/sum/min/max,
  /// p50/p90/p99, and the per-bucket cumulative counts.
  void WriteJsonl(std::ostream& os) const;
  util::Status WriteJsonlFile(const std::string& path) const;

  /// One registered series, as seen by ForEachSeries. Exactly one of the
  /// instrument pointers is non-null (none for a name that was registered
  /// but never typed). References stay valid for the registry's lifetime.
  struct SeriesRef {
    const std::string& name;
    const Labels& labels;  // sorted by key
    const Counter* counter;
    const Gauge* gauge;
    const Histogram* histogram;
  };

  /// Visits every series in deterministic (name, labels) order while
  /// holding the registry lock — `fn` must not call back into the
  /// registry. This is the exporter surface (JSONL, Prometheus text).
  void ForEachSeries(const std::function<void(const SeriesRef&)>& fn) const;

  /// Number of distinct metric series currently registered.
  size_t Size() const;

  /// Drops every registered series (tests and bench isolation).
  void Clear();

 private:
  struct Entry {
    std::string name;
    Labels labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  // Keyed by name + serialized sorted labels; map keeps export ordering
  // deterministic.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

/// The process-wide default registry used by all built-in instrumentation.
MetricsRegistry& DefaultMetrics();

/// Global switch consulted by hot-path instrumentation (nn::Tape, the
/// detector scoring loop). Collection is on by default; disabling reduces
/// the hooks to a single relaxed atomic load.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}

inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Escapes `s` for inclusion in a JSON string literal (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& s);

}  // namespace ucad::obs

#endif  // UCAD_OBS_METRICS_H_
