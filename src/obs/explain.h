#ifndef UCAD_OBS_EXPLAIN_H_
#define UCAD_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ucad::obs {

struct JsonValue;

/// One context operation's contribution to an abnormal verdict, as recorded
/// in the audit log's explain block: which preceding operation the model's
/// intent prediction attended to, and how the verdict would have shifted
/// had that operation not been there (exact leave-one-out counterfactual).
struct ExplainContribution {
  /// Session position of the contributing context operation.
  int position = 0;
  /// Key at that position.
  int key = 0;
  /// Human-readable form of the key (SQL template); may be empty.
  std::string tmpl;
  /// Share of the final block's attention mass spent on this position
  /// (averaged over heads; shares across the window sum to ~1).
  float attention = 0.0f;
  /// Rank of the observed key with this context operation masked to k0.
  int cf_rank = 0;
  /// Eq. 10 score of the observed key under the same mask.
  float cf_score = 0.0f;
};

/// Per-verdict explanation attached to an AuditRecord: the top-k
/// contributing context positions (attention-descending) and the incident
/// signature the verdict folds into.
struct ExplainBlock {
  std::vector<ExplainContribution> contributions;
  /// Stable incident signature: IncidentSignature(offending template,
  /// top-contributing context templates). 0 = unset.
  uint64_t signature = 0;

  bool empty() const { return contributions.empty() && signature == 0; }
};

/// Stable incident signature: FNV-1a over the offending template plus the
/// *sorted* top-contributing context templates, so per-window jitter in
/// attention ordering cannot split one incident into many. Two verdicts
/// share a signature exactly when the same operation was flagged against
/// the same set of load-bearing context operations.
uint64_t IncidentSignature(const std::string& offending,
                           std::vector<std::string> context_templates);

/// 16-hex-digit rendering of a signature (matches the audit JSON field).
std::string SignatureHex(uint64_t signature);

/// Serializes the block as a JSON object (single line, no newline):
/// {"signature":"<hex>","contrib":[{"position":..,"key":..,"template":..,
/// "attention":..,"cf_rank":..,"cf_score":..},...]}.
std::string ExplainBlockToJson(const ExplainBlock& block);

/// Parses a value previously produced by ExplainBlockToJson.
util::Result<ExplainBlock> ParseExplainBlock(const JsonValue& value);

}  // namespace ucad::obs

#endif  // UCAD_OBS_EXPLAIN_H_
