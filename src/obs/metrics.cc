#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace ucad::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/// fetch_add for atomic<double> via CAS (pre-C++20 libstdc++ lacks the
/// native floating-point overload on some toolchains).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

/// Compact JSON number: integers print without a fraction, everything else
/// with enough digits to round-trip a double.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<int64_t>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(labels[i].first) + "\":\"" +
           JsonEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  UCAD_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  UCAD_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be increasing";
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 1us .. 100s when observing milliseconds, in a 1-2.5-5 ladder.
  std::vector<double> bounds;
  for (double decade = 1e-3; decade < 2e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.5);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

std::vector<double> Histogram::FineLatencyBounds() {
  // 100ns .. 100s when observing milliseconds, ~10 buckets per decade.
  static const double kLadder[] = {1.0,  1.25, 1.6, 2.0, 2.5,
                                   3.15, 4.0,  5.0, 6.3, 8.0};
  std::vector<double> bounds;
  for (double decade = 1e-4; decade < 2e5; decade *= 10.0) {
    for (const double step : kLadder) bounds.push_back(decade * step);
  }
  return bounds;
}

void Histogram::Observe(double value) {
  const size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                     bounds_.begin();  // bounds_.size() == overflow
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

void Histogram::RecordExemplar(double value, const Labels& labels) {
  const size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                     bounds_.begin();
  const int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_.empty()) exemplars_.resize(bounds_.size() + 1);
  Exemplar& slot = exemplars_[idx];
  slot.value = value;
  slot.unix_ms = now_ms;
  slot.labels = labels;
}

bool Histogram::LatestExemplar(size_t i, Exemplar* out) const {
  UCAD_DCHECK(i <= bounds_.size());
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (i >= exemplars_.size() || exemplars_[i].unix_ms == 0) return false;
  *out = exemplars_[i];
  return true;
}

double Histogram::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

uint64_t Histogram::BucketCount(size_t i) const {
  UCAD_DCHECK(i < bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

uint64_t Histogram::OverflowCount() const {
  return buckets_[bounds_.size()].load(std::memory_order_relaxed);
}

double Histogram::Percentile(double q) const {
  const uint64_t n = Count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Edge quantiles answer from the exact extremes rather than bucket
  // interpolation: q=0 must not report a bucket edge above the smallest
  // observation, and q=1 must not undershoot the largest.
  if (q == 0.0) return Min();
  if (q == 1.0) return Max();
  const double target = q * static_cast<double>(n);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (cumulative + in_bucket >= target && in_bucket > 0) {
      // Interpolate within [lower, bounds_[i]].
      const double lower = i == 0 ? std::min(Min(), bounds_[0]) : bounds_[i - 1];
      const double frac =
          (target - static_cast<double>(cumulative)) / in_bucket;
      const double hi = std::min(bounds_[i], Max());
      const double lo = std::max(lower, Min());
      return lo + std::clamp(frac, 0.0, 1.0) * std::max(0.0, hi - lo);
    }
    cumulative += in_bucket;
  }
  return Max();  // target rank lives in the overflow bucket
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  for (const auto& [k, v] : sorted) key += "\x1f" + k + "\x1e" + v;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->labels = std::move(sorted);
    it = entries_.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreate(name, labels);
  UCAD_CHECK(!e->gauge && !e->histogram)
      << "metric '" << name << "' already registered with another type";
  if (!e->counter) e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreate(name, labels);
  UCAD_CHECK(!e->counter && !e->histogram)
      << "metric '" << name << "' already registered with another type";
  if (!e->gauge) e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreate(name, labels);
  UCAD_CHECK(!e->counter && !e->gauge)
      << "metric '" << name << "' already registered with another type";
  if (!e->histogram) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBounds();
    e->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return e->histogram.get();
}

void MetricsRegistry::ForEachSeries(
    const std::function<void(const SeriesRef&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, e] : entries_) {
    fn(SeriesRef{e->name, e->labels, e->counter.get(), e->gauge.get(),
                 e->histogram.get()});
  }
}

size_t MetricsRegistry::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void MetricsRegistry::WriteJsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, e] : entries_) {
    os << "{\"name\":\"" << JsonEscape(e->name) << "\",\"labels\":"
       << LabelsJson(e->labels);
    if (e->counter) {
      os << ",\"type\":\"counter\",\"value\":" << e->counter->Value();
    } else if (e->gauge) {
      os << ",\"type\":\"gauge\",\"value\":" << JsonNumber(e->gauge->Value());
    } else if (e->histogram) {
      const Histogram& h = *e->histogram;
      os << ",\"type\":\"histogram\",\"count\":" << h.Count()
         << ",\"sum\":" << JsonNumber(h.Sum())
         << ",\"min\":" << JsonNumber(h.Min())
         << ",\"max\":" << JsonNumber(h.Max())
         << ",\"mean\":" << JsonNumber(h.Mean())
         << ",\"p50\":" << JsonNumber(h.Percentile(0.50))
         << ",\"p90\":" << JsonNumber(h.Percentile(0.90))
         << ",\"p99\":" << JsonNumber(h.Percentile(0.99)) << ",\"buckets\":[";
      // Non-empty finite buckets only: default ladders are wide and mostly
      // zero, and snapshots should stay grep-able.
      bool first = true;
      for (size_t i = 0; i < h.bounds().size(); ++i) {
        const uint64_t c = h.BucketCount(i);
        if (c == 0) continue;
        if (!first) os << ",";
        first = false;
        os << "{\"le\":" << JsonNumber(h.bounds()[i]) << ",\"count\":" << c
           << "}";
      }
      if (h.OverflowCount() > 0) {
        if (!first) os << ",";
        os << "{\"le\":\"+inf\",\"count\":" << h.OverflowCount() << "}";
      }
      os << "]";
    } else {
      os << ",\"type\":\"unset\"";
    }
    os << "}\n";
  }
}

util::Status MetricsRegistry::WriteJsonlFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os.is_open()) {
    return util::Status::NotFound("cannot open metrics output: " + path);
  }
  WriteJsonl(os);
  os.flush();
  if (!os.good()) {
    return util::Status::Internal("short write to metrics output: " + path);
  }
  return util::Status::Ok();
}

MetricsRegistry& DefaultMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace ucad::obs
